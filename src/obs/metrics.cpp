#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace dlsbl::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      bucket_counts_(upper_bounds_.size() + 1, 0) {
    for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
        if (!(upper_bounds_[i - 1] < upper_bounds_[i])) {
            throw std::invalid_argument("Histogram: bounds not strictly increasing");
        }
    }
}

void Histogram::observe(double value) {
    std::size_t bucket = upper_bounds_.size();  // +Inf
    for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
        if (value <= upper_bounds_[i]) {
            bucket = i;
            break;
        }
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    ++bucket_counts_[bucket];
    if (count_ == 0 || value < min_) min_ = value;
    if (count_ == 0 || value > max_) max_ = value;
    ++count_;
    sum_ += value;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> out(bucket_counts_.size());
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
        running += bucket_counts_[i];
        out[i] = running;
    }
    return out;
}

std::uint64_t Histogram::count() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double Histogram::sum() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double Histogram::min() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double Histogram::max() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double Histogram::quantile(double q) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return min_;
    if (q > 1.0) q = 1.0;
    const double rank = q * static_cast<double>(count_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
        const std::uint64_t below = cumulative;
        cumulative += bucket_counts_[i];
        if (static_cast<double>(cumulative) < rank) continue;
        if (i == upper_bounds_.size()) return max_;  // rank fell in +Inf
        const double upper = std::min(upper_bounds_[i], max_);
        const double lower =
            i == 0 ? min_ : std::max(upper_bounds_[i - 1], min_);
        if (bucket_counts_[i] == 0) return std::min(upper, max_);
        const double fraction =
            (rank - static_cast<double>(below)) / static_cast<double>(bucket_counts_[i]);
        return lower + (upper - lower) * fraction;
    }
    return max_;
}

void Histogram::merge_from(const Histogram& other) {
    if (other.upper_bounds_ != upper_bounds_) {
        throw std::invalid_argument("Histogram::merge_from: bucket bounds differ");
    }
    // Both sides locked via std::lock's deadlock-avoidance ordering: two
    // threads merging the same pair in opposite directions must not hold
    // one mutex each while waiting for the other (analyzer lock-order pass;
    // pinned by MetricsConcurrency.CrossMergeNoDeadlock).
    const std::scoped_lock both(other.mutex_, mutex_);
    for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
        bucket_counts_[i] += other.bucket_counts_[i];
    }
    if (other.count_ > 0) {
        if (count_ == 0 || other.min_ < min_) min_ = other.min_;
        if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

std::string MetricsRegistry::render_labels(const Labels& labels) {
    if (labels.empty()) return {};
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i != 0) out += ',';
        out += labels[i].first + '=';
        // Prometheus label values use the same escapes JSON does.
        out += json_escape(labels[i].second);
    }
    out += '}';
    return out;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name][render_labels(labels)];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return gauges_[name][render_labels(labels)];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const Labels& labels) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& by_labels = histograms_[name];
    const std::string key = render_labels(labels);
    const auto it = by_labels.find(key);
    if (it != by_labels.end()) return it->second;
    return by_labels.try_emplace(key, std::move(upper_bounds)).first->second;
}

void MetricsRegistry::set_help(const std::string& name, std::string help) {
    const std::lock_guard<std::mutex> lock(mutex_);
    help_[name] = std::move(help);
}

std::string MetricsRegistry::prometheus_text() const {
    return prometheus_text(PrometheusOptions{});
}

std::string MetricsRegistry::prometheus_text(const PrometheusOptions& options) const {
    const std::string extra = render_labels(options.extra_labels);
    // Splices `more` (already rendered, or a raw k="v" fragment) into an
    // existing rendered label set.
    auto splice = [](const std::string& labels, const std::string& fragment) {
        if (fragment.empty()) return labels;
        if (labels.empty()) return "{" + fragment + '}';
        return labels.substr(0, labels.size() - 1) + ',' + fragment + '}';
    };
    const std::string extra_fragment =
        extra.empty() ? std::string() : extra.substr(1, extra.size() - 2);

    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    auto header = [&](const std::string& name, const char* type) {
        if (const auto it = help_.find(name); it != help_.end()) {
            out += "# HELP " + name + ' ' + it->second + '\n';
        }
        out += "# TYPE " + name + ' ' + type + '\n';
    };
    for (const auto& [name, series] : counters_) {
        header(name, "counter");
        for (const auto& [labels, counter] : series) {
            out += name + splice(labels, extra_fragment) + ' ' +
                   std::to_string(counter.value()) + '\n';
        }
    }
    for (const auto& [name, series] : gauges_) {
        header(name, "gauge");
        for (const auto& [labels, gauge] : series) {
            out += name + splice(labels, extra_fragment) + ' ' +
                   json_number(gauge.value()) + '\n';
        }
    }
    for (const auto& [name, series] : histograms_) {
        header(name, "histogram");
        for (const auto& [labels, histogram] : series) {
            const std::string base = splice(labels, extra_fragment);
            const auto cumulative = histogram.cumulative_counts();
            const auto& bounds = histogram.upper_bounds();
            for (std::size_t i = 0; i < cumulative.size(); ++i) {
                const std::string le =
                    i < bounds.size() ? json_number(bounds[i]) : std::string("+Inf");
                out += name + "_bucket" + splice(base, "le=\"" + le + "\"") + ' ' +
                       std::to_string(cumulative[i]) + '\n';
            }
            out += name + "_sum" + base + ' ' + json_number(histogram.sum()) + '\n';
            out += name + "_count" + base + ' ' + std::to_string(histogram.count()) +
                   '\n';
            // Summary-style convenience lines (scrape dashboards want p95
            // without a histogram_quantile() recording rule).
            for (const double q : options.quantiles) {
                out += name + splice(base, "quantile=\"" + json_number(q) + "\"") +
                       ' ' + json_number(histogram.quantile(q)) + '\n';
            }
        }
    }
    return out;
}

std::string MetricsRegistry::json_snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{";
    bool first = true;
    auto emit = [&](const std::string& key, const std::string& literal) {
        if (!first) out += ',';
        first = false;
        out += json_escape(key) + ':' + literal;
    };
    for (const auto& [name, series] : counters_) {
        for (const auto& [labels, counter] : series) {
            emit(name + labels, std::to_string(counter.value()));
        }
    }
    for (const auto& [name, series] : gauges_) {
        for (const auto& [labels, gauge] : series) {
            emit(name + labels, json_number(gauge.value()));
        }
    }
    for (const auto& [name, series] : histograms_) {
        for (const auto& [labels, histogram] : series) {
            emit(name + "_count" + labels, std::to_string(histogram.count()));
            emit(name + "_sum" + labels, json_number(histogram.sum()));
        }
    }
    out += '}';
    return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
    if (&other == this) return;
    // See Histogram::merge_from: scoped_lock orders the pair atomically so
    // concurrent opposite-direction merges cannot deadlock.
    const std::scoped_lock both(other.mutex_, mutex_);
    for (const auto& [name, series] : other.counters_) {
        for (const auto& [labels, counter] : series) {
            counters_[name][labels].inc(counter.value());
        }
    }
    for (const auto& [name, series] : other.gauges_) {
        for (const auto& [labels, gauge] : series) {
            gauges_[name][labels].add(gauge.value());
        }
    }
    for (const auto& [name, series] : other.histograms_) {
        for (const auto& [labels, histogram] : series) {
            auto& by_labels = histograms_[name];
            const auto it = by_labels.find(labels);
            if (it == by_labels.end()) {
                by_labels.try_emplace(labels, histogram.upper_bounds())
                    .first->second.merge_from(histogram);
            } else {
                it->second.merge_from(histogram);
            }
        }
    }
    for (const auto& [name, help] : other.help_) help_.emplace(name, help);
}

void MetricsRegistry::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    help_.clear();
}

}  // namespace dlsbl::obs
