#include "obs/catapult.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <vector>

#include "obs/json.hpp"

namespace dlsbl::obs {

namespace {

class TrackTable {
 public:
    // Fixed tracks first so the viewer shows protocol + bus on top.
    TrackTable() {
        id_of("protocol");
        id_of("BUS");
    }

    std::uint32_t id_of(const std::string& lane) {
        const auto it = ids_.find(lane);
        if (it != ids_.end()) return it->second;
        const auto id = static_cast<std::uint32_t>(order_.size());
        ids_.emplace(lane, id);
        order_.push_back(lane);
        return id;
    }

    [[nodiscard]] const std::vector<std::string>& order() const noexcept {
        return order_;
    }

 private:
    std::map<std::string, std::uint32_t> ids_;
    std::vector<std::string> order_;
};

}  // namespace

std::string catapult_from_trace(const sim::TraceRecorder& trace,
                                const CatapultOptions& options) {
    TrackTable tracks;
    // Register every actor in first-appearance order (deterministic: the
    // trace itself is deterministic) so tids are stable across runs.
    for (const auto& event : trace.events()) {
        if (!event.actor.empty()) tracks.id_of(event.actor);
    }
    const auto bars = sim::gantt_from_trace(trace);
    for (const auto& bar : bars) tracks.id_of(bar.lane);

    std::string events;
    bool first = true;
    auto push = [&](const std::string& body) {
        if (!first) events += ',';
        first = false;
        events += "\n{" + body + '}';
    };
    auto common = [&](const char* name, const char* cat, const char* ph,
                      std::uint32_t tid, double ts) {
        return "\"name\":" + json_escape(name) + ",\"cat\":\"" + cat +
               "\",\"ph\":\"" + ph + "\",\"pid\":0,\"tid\":" + std::to_string(tid) +
               ",\"ts\":" + json_number(ts * options.time_scale);
    };

    // Metadata: name the process and each track.
    push("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":" +
         json_escape(options.process_name) + '}');
    for (std::uint32_t tid = 0; tid < tracks.order().size(); ++tid) {
        push("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
             std::to_string(tid) +
             ",\"args\":{\"name\":" + json_escape(tracks.order()[tid]) + '}');
    }

    // Interval events: the Gantt bars (compute spans per processor, load
    // transfers on the BUS lane), boundaries identical to gantt_from_trace.
    for (const auto& bar : bars) {
        const bool is_bus = bar.glyph == '-';
        std::string body = common(is_bus ? "load-transfer" : "compute",
                                  is_bus ? "bus" : "compute", "X",
                                  tracks.id_of(bar.lane), bar.start);
        body += ",\"dur\":" + json_number((bar.end - bar.start) * options.time_scale);
        push(body);
    }

    // Causal spans: the first trace record carrying each span id anchors it
    // to a (track, timestamp); span names come from the kSpanBegin detail.
    struct SpanAnchor {
        std::uint32_t tid = 0;
        double time = 0.0;
        std::string name;
    };
    std::map<std::uint64_t, SpanAnchor> anchors;
    for (const auto& event : trace.events()) {
        if (event.span_id == 0 || anchors.contains(event.span_id)) continue;
        SpanAnchor anchor;
        anchor.tid = tracks.id_of(event.actor.empty() ? "protocol" : event.actor);
        anchor.time = event.time;
        if (event.kind == sim::TraceKind::kSpanBegin) anchor.name = event.detail;
        anchors.emplace(event.span_id, anchor);
    }

    // Instant events: messages, verdicts, phase changes, notes.
    for (const auto& event : trace.events()) {
        switch (event.kind) {
            case sim::TraceKind::kMessageSent:
            case sim::TraceKind::kMessageDelivered:
            case sim::TraceKind::kVerdict:
            case sim::TraceKind::kNote:
            case sim::TraceKind::kChurn: {
                std::string body = common(sim::to_string(event.kind), "event", "i",
                                          tracks.id_of(event.actor), event.time);
                body += ",\"s\":\"t\",\"args\":{\"detail\":" +
                        json_escape(event.detail) + '}';
                push(body);
                break;
            }
            case sim::TraceKind::kPhaseChange: {
                // Global instants on the protocol track, named by the phase.
                std::string body =
                    common(event.detail.c_str(), "phase", "i", tracks.id_of("protocol"),
                           event.time);
                body += ",\"s\":\"g\",\"args\":{}";
                push(body);
                break;
            }
            case sim::TraceKind::kSpanBegin:
            case sim::TraceKind::kSpanEnd: {
                // Async begin/end pair keyed by span id: the viewer nests
                // them by id, so run > phase > per-processor spans stack.
                const bool begin = event.kind == sim::TraceKind::kSpanBegin;
                const auto anchor = anchors.find(event.span_id);
                const std::string name =
                    (anchor != anchors.end() && !anchor->second.name.empty())
                        ? anchor->second.name
                        : ("span-" + std::to_string(event.span_id));
                const std::uint32_t tid = anchor != anchors.end()
                                              ? anchor->second.tid
                                              : tracks.id_of("protocol");
                std::string body =
                    common(name.c_str(), "span", begin ? "b" : "e", tid, event.time);
                body += ",\"id\":" + std::to_string(event.span_id);
                if (begin) {
                    body += ",\"args\":{\"parent\":" + std::to_string(event.parent_id) +
                            '}';
                }
                push(body);
                break;
            }
            default:
                break;  // transfer/compute boundaries already covered by bars
        }
    }

    // Flow arrows: wherever a record's span parents on (or equals) a span
    // anchored on a *different* track, draw source -> destination — bus
    // deliveries land on the receiver's track, compute chains on verify
    // spans, fines on disputes. One unique id per arrow.
    std::uint64_t edge_id = 0;
    for (const auto& event : trace.events()) {
        const std::uint64_t link =
            event.kind == sim::TraceKind::kMessageDelivered ||
                    event.kind == sim::TraceKind::kLoadTransferEnd
                ? event.span_id    // delivery record carries the sender's span
                : event.parent_id; // everything else links via its parent
        if (link == 0) continue;
        const auto anchor = anchors.find(link);
        if (anchor == anchors.end()) continue;
        const std::uint32_t dst_tid =
            tracks.id_of(event.actor.empty() ? "protocol" : event.actor);
        if (anchor->second.tid == dst_tid) continue;  // same-track: nesting shows it
        const std::string flow_name =
            anchor->second.name.empty() ? "causal" : anchor->second.name;
        ++edge_id;
        std::string src = common(flow_name.c_str(), "flow", "s", anchor->second.tid,
                                 anchor->second.time);
        src += ",\"id\":" + std::to_string(edge_id);
        push(src);
        std::string dst =
            common(flow_name.c_str(), "flow", "f", dst_tid, event.time);
        dst += ",\"bp\":\"e\",\"id\":" + std::to_string(edge_id);
        push(dst);
    }

    return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" + events + "\n]}\n";
}

bool write_catapult_file(const std::string& path, const sim::TraceRecorder& trace,
                         const CatapultOptions& options) {
    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) return false;
    out << catapult_from_trace(trace, options);
    return out.good();
}

}  // namespace dlsbl::obs
