// Minimal JSON support for the observability layer.
//
// Two halves:
//   * emission — json_escape() turns arbitrary bytes (including embedded
//     quotes, backslashes, control characters and non-UTF8 payloads) into a
//     valid double-quoted JSON string literal, and json_number() formats a
//     double with the shortest representation that round-trips through
//     strtod, so identical runs emit byte-identical artifacts;
//   * consumption — a small recursive-descent parser producing a JsonValue
//     DOM. It exists so tests can assert that every JSONL line and every
//     catapult export re-parses, without taking a third-party dependency.
//
// Bytes >= 0x80 are escaped as \u00XX (latin-1 mapping) rather than passed
// through, which keeps the output valid JSON even for non-UTF8 input; the
// parser decodes \u00XX back to the original byte, so escape+parse is an
// identity on arbitrary byte strings.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dlsbl::obs {

// Arbitrary bytes -> JSON string literal, quotes included.
std::string json_escape(std::string_view raw);

// Shortest decimal representation of `value` that strtod parses back to the
// same double. Non-finite values (JSON has no inf/nan) become "null".
std::string json_number(double value);

class JsonValue {
 public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;  // raw bytes (\u00XX decoded to single bytes)
    std::vector<JsonValue> array;
    // Insertion order preserved — field order is part of our schema.
    std::vector<std::pair<std::string, JsonValue>> object;

    // Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

// Parses `text` as exactly one JSON value (surrounding whitespace allowed);
// nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace dlsbl::obs
