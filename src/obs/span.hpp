// Causal spans: a per-run tree of named intervals linking everything that
// happens inside one protocol execution.
//
//   * trace_id — one per run, derived from the run's seed, so the id is
//     deterministic and two runs' spans never collide in a shared JSONL log;
//   * span_id  — allocated sequentially in protocol order (the deterministic
//     event ordering of whichever driver runs the protocol makes that order
//     reproducible), so identical runs produce identical span graphs
//     byte-for-byte;
//   * parent_id — the causal parent: run -> phase -> per-processor
//     message/verify/compute/fine spans. Message sends carry their span id on
//     the wire, so a *receiver's* spans parent on the *sender's* — that
//     cross-processor edge is what the catapult exporter renders as flow
//     arrows.
//
// SpanBook mirrors every open/close into two export paths:
//   * the obs EventLog (events "span_begin"/"span_end", Debug level) —
//     reaches JSONL sinks, so `--jsonl-out` + `--log-level debug` captures
//     the full span graph;
//   * an optional SpanSink — transports plug in their own mirror (the sim
//     and bus drivers both forward into a sim::TraceRecorder via
//     obs::TraceSpanSink), which reaches the Chrome-trace exporter.
//
// Span ids are allocated even when the Debug gate is closed, so turning
// logging on or off never changes the ids (and therefore never changes any
// other artifact).
#pragma once

#include <cstdint>
#include <string>

namespace dlsbl::obs {

struct SpanContext {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;  // 0 = root

    [[nodiscard]] bool valid() const noexcept { return span_id != 0; }
};

// Receives span open/close mirrors from a SpanBook. Implementations decide
// where they land (trace recorder, external collector, nothing).
class SpanSink {
 public:
    virtual ~SpanSink() = default;
    virtual void span_begin(double time, const std::string& actor,
                            const std::string& name, std::uint64_t span_id,
                            std::uint64_t parent_id) = 0;
    virtual void span_end(double time, std::uint64_t span_id,
                          std::uint64_t parent_id) = 0;
};

class SpanBook {
 public:
    // `sink` (optional) receives span begin/end mirror records; it must
    // outlive the book.
    explicit SpanBook(std::uint64_t trace_id, SpanSink* sink = nullptr)
        : trace_id_(trace_id), sink_(sink) {}

    [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }
    // Number of spans opened so far (tests assert determinism with this).
    [[nodiscard]] std::uint64_t opened() const noexcept { return next_id_; }

    // Opens a span at simulated time `sim_time`, attributed to `actor`
    // (process name; used as the catapult track). parent_id 0 = root span.
    SpanContext open(const std::string& name, const std::string& actor,
                     double sim_time, std::uint64_t parent_id = 0);

    void close(const SpanContext& span, double sim_time);

    // open+close at one instant — message sends, verdicts, fines.
    SpanContext instant(const std::string& name, const std::string& actor,
                        double sim_time, std::uint64_t parent_id = 0);

 private:
    std::uint64_t trace_id_;
    std::uint64_t next_id_ = 0;
    SpanSink* sink_;
};

}  // namespace dlsbl::obs
