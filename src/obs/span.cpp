#include "obs/span.hpp"

#include "obs/event.hpp"

namespace dlsbl::obs {

SpanContext SpanBook::open(const std::string& name, const std::string& actor,
                           double sim_time, std::uint64_t parent_id) {
    const SpanContext span{trace_id_, ++next_id_, parent_id};
    if (sink_ != nullptr) {
        sink_->span_begin(sim_time, actor, name, span.span_id, span.parent_id);
    }
    auto& events = EventLog::instance();
    if (events.enabled(LogLevel::Debug)) {
        events.emit(Event(LogLevel::Debug, "span", "span_begin")
                        .time(sim_time)
                        .str("name", name)
                        .str("actor", actor)
                        .span(span));
    }
    return span;
}

void SpanBook::close(const SpanContext& span, double sim_time) {
    if (!span.valid()) return;
    if (sink_ != nullptr) {
        sink_->span_end(sim_time, span.span_id, span.parent_id);
    }
    auto& events = EventLog::instance();
    if (events.enabled(LogLevel::Debug)) {
        events.emit(Event(LogLevel::Debug, "span", "span_end")
                        .time(sim_time)
                        .span(span));
    }
}

SpanContext SpanBook::instant(const std::string& name, const std::string& actor,
                              double sim_time, std::uint64_t parent_id) {
    const SpanContext span = open(name, actor, sim_time, parent_id);
    close(span, sim_time);
    return span;
}

}  // namespace dlsbl::obs
