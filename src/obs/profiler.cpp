#include "obs/profiler.hpp"

#include <cstdio>

namespace dlsbl::obs {

Profiler::Profiler() { nodes_.push_back(Node{"<root>", 0, {}, 0, 0}); }

Profiler& Profiler::instance() {
    static Profiler profiler;
    return profiler;
}

void Profiler::reset() {
    nodes_.clear();
    nodes_.push_back(Node{"<root>", 0, {}, 0, 0});
    current_ = 0;
}

std::size_t Profiler::enter(const char* name) {
    for (const std::size_t child : nodes_[current_].children) {
        if (nodes_[child].name == name) {
            current_ = child;
            return child;
        }
    }
    const std::size_t index = nodes_.size();
    nodes_.push_back(Node{name, current_, {}, 0, 0});
    nodes_[current_].children.push_back(index);
    current_ = index;
    return index;
}

void Profiler::leave(std::size_t node_index, std::uint64_t elapsed_ns) {
    Node& node = nodes_[node_index];
    node.ns += elapsed_ns;
    node.calls += 1;
    current_ = node.parent;
}

std::uint64_t Profiler::total_ns(const std::string& name) const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) {
        if (node.name == name) total += node.ns;
    }
    return total;
}

std::uint64_t Profiler::total_calls(const std::string& name) const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) {
        if (node.name == name) total += node.calls;
    }
    return total;
}

void Profiler::report_node(std::string& out, std::size_t index, int depth) const {
    const Node& node = nodes_[index];
    if (index != 0) {
        const Node& parent = nodes_[node.parent];
        double parent_ns = static_cast<double>(parent.ns);
        // Top-level scopes have the synthetic root (ns == 0) as parent; use
        // the sum of top-level times instead so shares still add up.
        if (node.parent == 0) {
            parent_ns = 0.0;
            for (const std::size_t child : nodes_[0].children) {
                parent_ns += static_cast<double>(nodes_[child].ns);
            }
        }
        const double pct = parent_ns > 0.0
                               ? 100.0 * static_cast<double>(node.ns) / parent_ns
                               : 100.0;
        char line[192];
        std::snprintf(line, sizeof(line), "%*s%-*s %10.3f ms %9llu calls %6.1f%%\n",
                      2 * depth, "", 32 - 2 * depth, node.name.c_str(),
                      static_cast<double>(node.ns) / 1e6,
                      static_cast<unsigned long long>(node.calls), pct);
        out += line;
    }
    for (const std::size_t child : node.children) {
        report_node(out, child, index == 0 ? 0 : depth + 1);
    }
}

std::string Profiler::report() const {
    std::string out;
    if (nodes_[0].children.empty()) return "profiler: no scopes recorded\n";
    out += "scope                                  inclusive       calls  of parent\n";
    report_node(out, 0, 0);
    return out;
}

}  // namespace dlsbl::obs
