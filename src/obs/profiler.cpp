#include "obs/profiler.hpp"

#include <cstdio>

namespace dlsbl::obs {

Profiler::Profiler() { nodes_.push_back(Node{"<root>", 0, {}, 0, 0}); }

Profiler& Profiler::instance() {
    static Profiler profiler;
    return profiler;
}

namespace {
// Per-thread cursor into the shared scope tree. The generation stamp lets
// reset() invalidate every thread's cursor without coordinating with them.
struct ThreadCursor {
    std::size_t current = 0;
    std::uint64_t generation = 0;
};
// Deliberately mutable per-thread scope cursor (generation-stamped; see
// Profiler::reset). DLSBL_LINT_ALLOW(mutable-global)
thread_local ThreadCursor t_cursor;
}  // namespace

void Profiler::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    nodes_.clear();
    nodes_.push_back(Node{"<root>", 0, {}, 0, 0});
    ++generation_;
}

std::size_t Profiler::enter(const char* name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (t_cursor.generation != generation_) {
        t_cursor.current = 0;
        t_cursor.generation = generation_;
    }
    for (const std::size_t child : nodes_[t_cursor.current].children) {
        if (nodes_[child].name == name) {
            t_cursor.current = child;
            return child;
        }
    }
    const std::size_t index = nodes_.size();
    nodes_.push_back(Node{name, t_cursor.current, {}, 0, 0});
    nodes_[t_cursor.current].children.push_back(index);
    t_cursor.current = index;
    return index;
}

void Profiler::leave(std::size_t node_index, std::uint64_t elapsed_ns) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // A reset() between enter and leave invalidates the node index; drop the
    // sample rather than write into a rebuilt tree.
    if (t_cursor.generation != generation_ || node_index >= nodes_.size()) return;
    Node& node = nodes_[node_index];
    node.ns += elapsed_ns;
    node.calls += 1;
    t_cursor.current = node.parent;
}

std::uint64_t Profiler::total_ns(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& node : nodes_) {
        if (node.name == name) total += node.ns;
    }
    return total;
}

std::uint64_t Profiler::total_calls(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& node : nodes_) {
        if (node.name == name) total += node.calls;
    }
    return total;
}

void Profiler::report_node(std::string& out, std::size_t index, int depth) const {
    const Node& node = nodes_[index];
    if (index != 0) {
        const Node& parent = nodes_[node.parent];
        double parent_ns = static_cast<double>(parent.ns);
        // Top-level scopes have the synthetic root (ns == 0) as parent; use
        // the sum of top-level times instead so shares still add up.
        if (node.parent == 0) {
            parent_ns = 0.0;
            for (const std::size_t child : nodes_[0].children) {
                parent_ns += static_cast<double>(nodes_[child].ns);
            }
        }
        const double pct = parent_ns > 0.0
                               ? 100.0 * static_cast<double>(node.ns) / parent_ns
                               : 100.0;
        char line[192];
        std::snprintf(line, sizeof(line), "%*s%-*s %10.3f ms %9llu calls %6.1f%%\n",
                      2 * depth, "", 32 - 2 * depth, node.name.c_str(),
                      static_cast<double>(node.ns) / 1e6,
                      static_cast<unsigned long long>(node.calls), pct);
        out += line;
    }
    for (const std::size_t child : node.children) {
        report_node(out, child, index == 0 ? 0 : depth + 1);
    }
}

std::string Profiler::report() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    if (nodes_[0].children.empty()) return "profiler: no scopes recorded\n";
    out += "scope                                  inclusive       calls  of parent\n";
    report_node(out, 0, 0);
    return out;
}

}  // namespace dlsbl::obs
