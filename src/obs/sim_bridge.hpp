// Bridges from the sim layer's bespoke accounting into the generic
// observability substrate.
//
// sim::NetworkMetrics keeps its narrow, allocation-free API (it sits on the
// network hot path); this re-hosts its totals and per-phase counters onto a
// MetricsRegistry after the fact, giving them Prometheus export, manifest
// snapshots and a uniform namespace next to the referee counters.
#pragma once

#include "obs/metrics.hpp"
#include "sim/metrics.hpp"

namespace dlsbl::obs {

// Metric names used by the export (tests assert against these).
inline constexpr const char* kControlMessagesMetric = "dlsbl_control_messages_total";
inline constexpr const char* kControlBytesMetric = "dlsbl_control_bytes_total";
inline constexpr const char* kLoadTransfersMetric = "dlsbl_load_transfers_total";
inline constexpr const char* kLoadUnitsMetric = "dlsbl_load_units_moved";

// Adds the network's counters to `registry`: per-phase control message and
// byte counters (label phase="...") plus load-transfer totals.
void export_network_metrics(const sim::NetworkMetrics& network,
                            MetricsRegistry& registry);

}  // namespace dlsbl::obs
