// Bridges from the sim layer's bespoke accounting into the generic
// observability substrate.
//
// sim::NetworkMetrics keeps its narrow, allocation-free API (it sits on the
// network hot path); this re-hosts its totals and per-phase counters onto a
// MetricsRegistry after the fact, giving them Prometheus export, manifest
// snapshots and a uniform namespace next to the referee counters.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace dlsbl::obs {

// Metric names used by the export (tests assert against these).
inline constexpr const char* kControlMessagesMetric = "dlsbl_control_messages_total";
inline constexpr const char* kControlBytesMetric = "dlsbl_control_bytes_total";
inline constexpr const char* kLoadTransfersMetric = "dlsbl_load_transfers_total";
inline constexpr const char* kLoadUnitsMetric = "dlsbl_load_units_moved";

// Adds the network's counters to `registry`: per-phase control message and
// byte counters (label phase="...") plus load-transfer totals.
void export_network_metrics(const sim::NetworkMetrics& network,
                            MetricsRegistry& registry);

// SpanSink that mirrors span begin/end records into a sim::TraceRecorder,
// preserving the exact record shapes the catapult exporter expects:
// kSpanBegin carries actor+name, kSpanEnd carries empty strings (the begin
// record already names the span). Both drivers use this so span artifacts
// stay byte-identical across transports.
class TraceSpanSink final : public SpanSink {
 public:
    explicit TraceSpanSink(sim::TraceRecorder& trace) : trace_(trace) {}

    void span_begin(double time, const std::string& actor,
                    const std::string& name, std::uint64_t span_id,
                    std::uint64_t parent_id) override {
        trace_.record(time, sim::TraceKind::kSpanBegin, actor, name, span_id,
                      parent_id);
    }

    void span_end(double time, std::uint64_t span_id,
                  std::uint64_t parent_id) override {
        trace_.record(time, sim::TraceKind::kSpanEnd, std::string(),
                      std::string(), span_id, parent_id);
    }

 private:
    sim::TraceRecorder& trace_;
};

}  // namespace dlsbl::obs
