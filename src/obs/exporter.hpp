// Live telemetry: a small threaded HTTP server exposing the process's
// metrics registries in Prometheus text exposition format.
//
// Endpoints:
//   * /metrics — the global MetricsRegistry, the exporter's own meta
//     registry, and every attached per-run registry (rendered with a
//     run="<name>" label), each snapshotted under its registry lock so a
//     scrape never observes a torn update;
//   * /healthz — liveness probe ("ok");
//   * /runs    — JSON index of every run attached so far (active flag +
//     the run's manifest when one was recorded).
//
// The server is deliberately dependency-free: raw POSIX sockets, one
// accept-loop thread (::poll with a short timeout so stop() is prompt),
// requests handled inline — a scrape endpoint does not need concurrency.
// Wall-clock use (uptime gauge) and socket syscalls are confined to this
// pair of files and never feed run artifacts, so the determinism contract
// of the obs layer (byte-identical JSONL/manifests) is untouched; the
// exporter keeps its own counters in a private registry for the same
// reason.
//
// Lifecycle: construct with options, start() binds/listens/spawns the
// thread (port 0 picks an ephemeral port — read the real one back with
// port()), stop() joins; the destructor stops. attach_run()/detach_run()
// may race with scrapes — the run table has its own mutex — but an
// attached registry must outlive its attachment (detach before the
// registry dies; exec::RunExecutor does exactly that).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace dlsbl::obs {

struct ExporterOptions {
    std::uint16_t port = 0;                 // 0 = kernel-assigned ephemeral port
    std::string bind_address = "127.0.0.1"; // scrape endpoints default to loopback
    // Histogram quantiles rendered as summary-style lines on /metrics.
    std::vector<double> quantiles = {0.5, 0.95, 0.99};
};

class MetricsExporter {
 public:
    explicit MetricsExporter(ExporterOptions options = {});
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter&) = delete;
    MetricsExporter& operator=(const MetricsExporter&) = delete;

    // Binds, listens and spawns the accept loop. False (with the listening
    // socket closed) if the port is taken or sockets are unavailable.
    bool start();
    // Stops the accept loop and joins the thread. Idempotent.
    void stop();

    [[nodiscard]] bool running() const noexcept { return running_; }
    // The bound port (meaningful after a successful start()).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    // --- run index -----------------------------------------------------------
    // Registers `registry` under `name`; /metrics renders it with a
    // run="<name>" label until detach_run. Re-attaching a name reactivates it.
    void attach_run(const std::string& name, const MetricsRegistry* registry);
    // Marks the run inactive and forgets its registry pointer (safe to call
    // before destroying the registry). The run stays listed in /runs.
    void detach_run(const std::string& name);
    // Attaches a manifest JSON document to the run's /runs entry.
    void record_run_manifest(const std::string& name, std::string manifest_json);

    // --- response bodies -----------------------------------------------------
    // Public so exposition-format tests can assert on exact bytes without a
    // socket. These are what the HTTP handlers serve.
    [[nodiscard]] std::string render_metrics() const;
    [[nodiscard]] std::string render_runs() const;

 private:
    struct RunEntry {
        const MetricsRegistry* registry = nullptr;  // null once detached
        bool active = false;
        std::string manifest_json;  // empty = none recorded
    };

    void serve();
    void handle_client(int client_fd);

    ExporterOptions options_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    std::thread thread_;

    mutable std::mutex runs_mutex_;              // guards runs_
    std::map<std::string, RunEntry> runs_;

    // The exporter's own meta metrics (scrape counts, uptime). Private so
    // the global registry — snapshotted into deterministic RunManifests —
    // never picks up scrape-dependent values.
    mutable MetricsRegistry self_;
    double start_monotonic_ = 0.0;  // seconds; set by start()
};

}  // namespace dlsbl::obs
