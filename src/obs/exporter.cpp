#include "obs/exporter.hpp"

#include <chrono>
#include <cstring>

#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DLSBL_EXPORTER_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DLSBL_EXPORTER_HAVE_SOCKETS 0
#endif

namespace dlsbl::obs {

namespace {

// Wall-clock is allowed here (see the header's determinism note): uptime is
// live telemetry, never a run artifact.
double monotonic_seconds() {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

constexpr const char* kPrometheusType = "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

MetricsExporter::MetricsExporter(ExporterOptions options)
    : options_(std::move(options)) {}

MetricsExporter::~MetricsExporter() { stop(); }

bool MetricsExporter::start() {
#if DLSBL_EXPORTER_HAVE_SOCKETS
    if (running_) return true;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    port_ = ntohs(bound.sin_port);
    start_monotonic_ = monotonic_seconds();
    stop_requested_ = false;
    running_ = true;
    thread_ = std::thread([this] { serve(); });
    return true;
#else
    return false;  // no socket backend on this platform
#endif
}

void MetricsExporter::stop() {
#if DLSBL_EXPORTER_HAVE_SOCKETS
    if (!running_) return;
    stop_requested_ = true;
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    running_ = false;
#endif
}

void MetricsExporter::attach_run(const std::string& name,
                                 const MetricsRegistry* registry) {
    const std::lock_guard<std::mutex> lock(runs_mutex_);
    RunEntry& entry = runs_[name];
    entry.registry = registry;
    entry.active = registry != nullptr;
}

void MetricsExporter::detach_run(const std::string& name) {
    const std::lock_guard<std::mutex> lock(runs_mutex_);
    const auto it = runs_.find(name);
    if (it == runs_.end()) return;
    it->second.registry = nullptr;
    it->second.active = false;
}

void MetricsExporter::record_run_manifest(const std::string& name,
                                          std::string manifest_json) {
    const std::lock_guard<std::mutex> lock(runs_mutex_);
    runs_[name].manifest_json = std::move(manifest_json);
}

std::string MetricsExporter::render_metrics() const {
    const double begin = monotonic_seconds();
    self_.set_help("dlsbl_exporter_uptime_seconds",
                   "Seconds since the exporter started");
    self_.gauge("dlsbl_exporter_uptime_seconds")
        .set(monotonic_seconds() - start_monotonic_);

    MetricsRegistry::PrometheusOptions plain;
    plain.quantiles = options_.quantiles;
    std::string global_text = MetricsRegistry::global().prometheus_text(plain);

    // Per-run registries, in name order (std::map) so the body layout is
    // stable across scrapes.
    std::string runs_text;
    {
        const std::lock_guard<std::mutex> lock(runs_mutex_);
        for (const auto& [name, entry] : runs_) {
            if (entry.registry == nullptr) continue;
            MetricsRegistry::PrometheusOptions labelled;
            labelled.quantiles = options_.quantiles;
            labelled.extra_labels = {{"run", name}};
            runs_text += entry.registry->prometheus_text(labelled);
        }
    }

    // Observe the render cost before serializing self_, so even the first
    // scrape of an otherwise idle process carries a histogram (and its
    // quantile rows). Host-clock data stays inside this private registry;
    // it is never merged into deterministic snapshots.
    self_.set_help("dlsbl_exporter_render_seconds",
                   "Time spent rendering the global and per-run sections");
    self_.histogram("dlsbl_exporter_render_seconds",
                    {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0})
        .observe(monotonic_seconds() - begin);

    return global_text + self_.prometheus_text(plain) + runs_text;
}

std::string MetricsExporter::render_runs() const {
    const std::lock_guard<std::mutex> lock(runs_mutex_);
    std::string out = "{\"runs\":[";
    bool first = true;
    for (const auto& [name, entry] : runs_) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":" + json_escape(name);
        out += ",\"active\":";
        out += entry.active ? "true" : "false";
        if (!entry.manifest_json.empty()) {
            out += ",\"manifest\":" + entry.manifest_json;
        }
        out += '}';
    }
    out += "]}\n";
    return out;
}

void MetricsExporter::serve() {
#if DLSBL_EXPORTER_HAVE_SOCKETS
    while (!stop_requested_) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0) continue;  // timeout or signal: re-check stop flag
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) continue;
        handle_client(client);
        ::close(client);
    }
#endif
}

void MetricsExporter::handle_client(int client_fd) {
#if DLSBL_EXPORTER_HAVE_SOCKETS
    // One short request; scrape clients send the whole header at once, so a
    // single bounded read (with a poll guard) is enough.
    char buffer[4096];
    pollfd pfd{};
    pfd.fd = client_fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) return;
    const ssize_t got = ::recv(client_fd, buffer, sizeof(buffer) - 1, 0);
    if (got <= 0) return;
    buffer[got] = '\0';

    // Request line: METHOD SP PATH SP VERSION.
    const char* path_start = std::strchr(buffer, ' ');
    std::string path;
    if (path_start != nullptr) {
        const char* path_end = std::strchr(path_start + 1, ' ');
        if (path_end != nullptr) path.assign(path_start + 1, path_end);
    }
    const bool is_get = std::strncmp(buffer, "GET ", 4) == 0;

    std::string response;
    if (!is_get) {
        response = http_response("405 Method Not Allowed", "text/plain",
                                 "method not allowed\n");
    } else if (path == "/metrics") {
        self_.counter("dlsbl_exporter_scrapes_total", {{"path", "/metrics"}}).inc();
        response = http_response("200 OK", kPrometheusType, render_metrics());
    } else if (path == "/healthz") {
        self_.counter("dlsbl_exporter_scrapes_total", {{"path", "/healthz"}}).inc();
        response = http_response("200 OK", "text/plain", "ok\n");
    } else if (path == "/runs") {
        self_.counter("dlsbl_exporter_scrapes_total", {{"path", "/runs"}}).inc();
        response = http_response("200 OK", "application/json", render_runs());
    } else {
        response = http_response("404 Not Found", "text/plain", "not found\n");
    }

    std::size_t sent = 0;
    while (sent < response.size()) {
        const ssize_t n =
            ::send(client_fd, response.data() + sent, response.size() - sent, 0);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
    }
#else
    (void)client_fd;
#endif
}

}  // namespace dlsbl::obs
