#include "util/rational.hpp"

#include <cmath>
#include <stdexcept>

namespace dlsbl::util {

Rational::Rational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
    if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
    normalize();
}

void Rational::normalize() {
    if (den_.is_negative()) {
        num_ = num_.negated();
        den_ = den_.negated();
    }
    if (num_.is_zero()) {
        den_ = BigInt{1};
        return;
    }
    BigInt g = BigInt::gcd(num_, den_);
    if (g != BigInt{1}) {
        num_ /= g;
        den_ /= g;
    }
}

Rational Rational::parse(std::string_view text) {
    const auto slash = text.find('/');
    if (slash == std::string_view::npos) {
        return Rational{BigInt::from_decimal(text), BigInt{1}};
    }
    return Rational{BigInt::from_decimal(text.substr(0, slash)),
                    BigInt::from_decimal(text.substr(slash + 1))};
}

Rational Rational::from_double(double value) {
    if (!std::isfinite(value)) throw std::domain_error("Rational: non-finite double");
    // Exact zero (either sign) has no frexp decomposition; the comparison
    // is exact on purpose. DLSBL_LINT_ALLOW(float-equality)
    if (value == 0.0) return Rational{};
    int exp = 0;
    double mant = std::frexp(value, &exp);  // value = mant * 2^exp, |mant| in [0.5, 1)
    // Scale mantissa to an exact 53-bit integer.
    for (int i = 0; i < 53 && mant != std::floor(mant); ++i) {
        mant *= 2.0;
        --exp;
    }
    BigInt num{static_cast<std::int64_t>(mant)};
    if (exp >= 0) {
        return Rational{num * BigInt::pow(BigInt{2}, static_cast<std::uint64_t>(exp)),
                        BigInt{1}};
    }
    return Rational{std::move(num),
                    BigInt::pow(BigInt{2}, static_cast<std::uint64_t>(-exp))};
}

Rational& Rational::operator+=(const Rational& rhs) {
    num_ = num_ * rhs.den_ + rhs.num_ * den_;
    den_ *= rhs.den_;
    normalize();
    return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
    num_ = num_ * rhs.den_ - rhs.num_ * den_;
    den_ *= rhs.den_;
    normalize();
    return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
    num_ *= rhs.num_;
    den_ *= rhs.den_;
    normalize();
    return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
    if (rhs.is_zero()) throw std::domain_error("Rational: division by zero");
    num_ *= rhs.den_;
    den_ *= rhs.num_;
    normalize();
    return *this;
}

Rational Rational::operator-() const {
    Rational r = *this;
    r.num_ = r.num_.negated();
    return r;
}

Rational Rational::reciprocal() const {
    if (is_zero()) throw std::domain_error("Rational: reciprocal of zero");
    return Rational{den_, num_};
}

Rational Rational::abs() const {
    Rational r = *this;
    r.num_ = r.num_.abs();
    return r;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
    return (a.num_ * b.den_) <=> (b.num_ * a.den_);
}

std::string Rational::to_string() const {
    if (den_ == BigInt{1}) return num_.to_string();
    return num_.to_string() + "/" + den_.to_string();
}

double Rational::to_double() const { return num_.to_double() / den_.to_double(); }

}  // namespace dlsbl::util
