#include "util/rng.hpp"

#include <cmath>

namespace dlsbl::util {

double Xoshiro256::normal(double mean, double stddev) noexcept {
    // Marsaglia polar method; the spare variate is intentionally discarded to
    // keep the generator's consumption pattern simple and reproducible.
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
        // Marsaglia polar rejection: s == 0.0 exactly would divide by zero
        // in the log term below. DLSBL_LINT_ALLOW(float-equality)
    } while (s >= 1.0 || s == 0.0);
    return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace dlsbl::util
