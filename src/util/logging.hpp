// Minimal leveled logger.
//
// The protocol runner logs phase transitions and referee verdicts at Debug;
// benches run with the logger silenced (Level::Off) so their stdout is the
// experiment artifact and nothing else.
//
// By default messages go straight to stderr. A backend hook lets the
// observability layer (obs::install_logger_bridge) re-route every message
// through its EventSink fan-out, so the same call sites feed the stderr
// sink and the structured JSONL sink without the util layer depending on
// obs.
// The level gate and backend hook are atomics so concurrent protocol runs
// (exec::RunExecutor workers) can log while another thread re-configures the
// logger without a data race; message formatting itself is per-call local.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>

namespace dlsbl::util {

enum class LogLevel { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

class Logger {
 public:
    // Receives every message that passes the level gate.
    using Backend = void (*)(LogLevel, std::string_view component,
                             std::string_view message);

    static Logger& instance() {
        static Logger logger;
        return logger;
    }

    void set_level(LogLevel level) noexcept {
        level_.store(level, std::memory_order_relaxed);
    }
    [[nodiscard]] LogLevel level() const noexcept {
        return level_.load(std::memory_order_relaxed);
    }

    // nullptr restores the default stderr output.
    void set_backend(Backend hook) noexcept {
        backend_.store(hook, std::memory_order_release);
    }
    [[nodiscard]] Backend backend() const noexcept {
        return backend_.load(std::memory_order_acquire);
    }

    void log(LogLevel level, std::string_view component, std::string_view message) const {
        if (static_cast<int>(level) > static_cast<int>(this->level())) return;
        if (const Backend hook = backend(); hook != nullptr) {
            hook(level, component, message);
            return;
        }
        std::fprintf(stderr, "[%s] %.*s: %.*s\n", name(level),
                     static_cast<int>(component.size()), component.data(),
                     static_cast<int>(message.size()), message.data());
    }

    // Fixed-width tag used by the stderr output format ("[DEBUG] comp: msg");
    // shared with obs::StderrSink so both print identical lines.
    static const char* name(LogLevel level) noexcept {
        switch (level) {
            case LogLevel::Error: return "ERROR";
            case LogLevel::Warn: return "WARN ";
            case LogLevel::Info: return "INFO ";
            case LogLevel::Debug: return "DEBUG";
            default: return "?";
        }
    }

 private:
    std::atomic<LogLevel> level_{LogLevel::Warn};
    std::atomic<Backend> backend_{nullptr};
};

inline void log_error(std::string_view component, std::string_view message) {
    Logger::instance().log(LogLevel::Error, component, message);
}
inline void log_warn(std::string_view component, std::string_view message) {
    Logger::instance().log(LogLevel::Warn, component, message);
}
inline void log_info(std::string_view component, std::string_view message) {
    Logger::instance().log(LogLevel::Info, component, message);
}
inline void log_debug(std::string_view component, std::string_view message) {
    Logger::instance().log(LogLevel::Debug, component, message);
}

}  // namespace dlsbl::util
