// Byte-buffer helpers and a tiny deterministic serializer.
//
// All protocol messages that get digitally signed are first flattened to a
// canonical byte encoding by ByteWriter, so two honest implementations always
// sign/verify identical bytes. Little-endian, length-prefixed strings.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dlsbl::util {

using Bytes = std::vector<std::uint8_t>;

std::string to_hex(std::span<const std::uint8_t> data);
Bytes from_hex(std::string_view hex);

inline Bytes to_bytes(std::string_view text) {
    return Bytes(text.begin(), text.end());
}

class ByteWriter {
 public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    // Doubles are serialized by bit pattern; all participants run IEEE-754.
    void f64(double v);
    void str(std::string_view s) {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }
    void bytes(std::span<const std::uint8_t> b) {
        u64(b.size());
        buf_.insert(buf_.end(), b.begin(), b.end());
    }
    void raw(std::span<const std::uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

    [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
    [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }

 private:
    Bytes buf_;
};

class ByteReader {
 public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8() { return take(1)[0]; }
    std::uint32_t u32() {
        auto b = take(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return v;
    }
    std::uint64_t u64() {
        auto b = take(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    std::string str() {
        const auto n = u64();
        auto b = take(n);
        return std::string(b.begin(), b.end());
    }
    Bytes bytes() {
        const auto n = u64();
        auto b = take(n);
        return Bytes(b.begin(), b.end());
    }

    [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
    std::span<const std::uint8_t> take(std::size_t n) {
        if (pos_ + n > data_.size()) throw std::out_of_range("ByteReader: underflow");
        auto view = data_.subspan(pos_, n);
        pos_ += n;
        return view;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

}  // namespace dlsbl::util
