#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

namespace dlsbl::util {

namespace {
constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};

std::string format_tick(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}
}  // namespace

std::string render_scatter(const std::vector<Series>& series, const ChartOptions& options) {
    double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
    double ymin = xmin, ymax = -xmin;
    bool any = false;
    for (const auto& s : series) {
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            xmin = std::min(xmin, s.xs[i]);
            xmax = std::max(xmax, s.xs[i]);
            ymin = std::min(ymin, s.ys[i]);
            ymax = std::max(ymax, s.ys[i]);
            any = true;
        }
    }
    if (!any) return "(empty chart)\n";
    if (xmax == xmin) xmax = xmin + 1.0;
    if (ymax == ymin) ymax = ymin + 1.0;

    const int w = std::max(options.width, 8);
    const int h = std::max(options.height, 4);
    std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));

    for (std::size_t si = 0; si < series.size(); ++si) {
        const char glyph = kGlyphs[si % sizeof(kGlyphs)];
        const auto& s = series[si];
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            int cx = static_cast<int>(std::lround((s.xs[i] - xmin) / (xmax - xmin) * (w - 1)));
            int cy = static_cast<int>(std::lround((s.ys[i] - ymin) / (ymax - ymin) * (h - 1)));
            cx = std::clamp(cx, 0, w - 1);
            cy = std::clamp(cy, 0, h - 1);
            grid[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] = glyph;
        }
    }

    std::string out;
    out += options.y_label + " (" + format_tick(ymin) + " .. " + format_tick(ymax) + ")\n";
    for (const auto& row : grid) out += "  |" + row + "\n";
    out += "  +" + std::string(static_cast<std::size_t>(w), '-') + "\n";
    out += "   " + options.x_label + ": " + format_tick(xmin) + " .. " + format_tick(xmax) + "\n";
    for (std::size_t si = 0; si < series.size(); ++si) {
        out += "   ";
        out += kGlyphs[si % sizeof(kGlyphs)];
        out += " = " + series[si].name + "\n";
    }
    return out;
}

std::string render_gantt(const std::vector<GanttBar>& bars, const GanttOptions& options) {
    if (bars.empty()) return "(empty gantt)\n";
    double tmax = 0.0;
    std::size_t lane_width = 0;
    // Preserve first-appearance lane order.
    std::vector<std::string> lane_order;
    std::map<std::string, std::size_t> lane_index;
    for (const auto& b : bars) {
        tmax = std::max(tmax, b.end);
        lane_width = std::max(lane_width, b.lane.size());
        if (lane_index.find(b.lane) == lane_index.end()) {
            lane_index[b.lane] = lane_order.size();
            lane_order.push_back(b.lane);
        }
    }
    if (tmax <= 0.0) tmax = 1.0;

    const int w = std::max(options.width, 10);
    std::vector<std::string> lanes(lane_order.size(), std::string(static_cast<std::size_t>(w), '.'));
    for (const auto& b : bars) {
        int c0 = static_cast<int>(std::floor(b.start / tmax * (w - 1)));
        int c1 = static_cast<int>(std::ceil(b.end / tmax * (w - 1)));
        c0 = std::clamp(c0, 0, w - 1);
        c1 = std::clamp(c1, c0, w - 1);
        auto& row = lanes[lane_index[b.lane]];
        for (int c = c0; c <= c1; ++c) row[static_cast<std::size_t>(c)] = b.glyph;
    }

    std::string out;
    for (std::size_t i = 0; i < lane_order.size(); ++i) {
        const auto& name = lane_order[i];
        out += name + std::string(lane_width - name.size(), ' ') + " |" + lanes[i] + "|\n";
    }
    out += std::string(lane_width, ' ') + " 0" + std::string(static_cast<std::size_t>(w - 1), ' ') +
           format_tick(tmax) + " (" + options.time_label + ")\n";
    return out;
}

}  // namespace dlsbl::util
