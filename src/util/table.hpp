// Plain-text table rendering for the bench harness.
//
// Every experiment binary prints its result as an aligned ASCII table so the
// bench output files are directly comparable with the paper's artifacts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dlsbl::util {

class Table {
 public:
    explicit Table(std::vector<std::string> headers);

    // Number formatting precision for add_row(double) cells.
    void set_precision(int digits) noexcept { precision_ = digits; }

    void add_row(std::vector<std::string> cells);
    // Convenience: formats doubles with the configured precision.
    void add_numeric_row(const std::vector<double>& cells);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

    [[nodiscard]] std::string render() const;

    static std::string format_double(double v, int precision);

 private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    int precision_ = 4;
};

}  // namespace dlsbl::util
