#include "util/bytes.hpp"

#include <bit>
#include <cstring>

namespace dlsbl::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("from_hex: invalid hex digit");
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
    std::string out;
    out.reserve(data.size() * 2);
    for (std::uint8_t b : data) {
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0x0f]);
    }
    return out;
}

Bytes from_hex(std::string_view hex) {
    if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) * 16 + hex_value(hex[i + 1])));
    }
    return out;
}

void ByteWriter::f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

double ByteReader::f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

}  // namespace dlsbl::util
