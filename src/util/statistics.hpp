// Summary statistics and least-squares regression for the bench harness.
//
// The communication-complexity experiment (Theorem 5.4) fits a power law
// messages(m) = c * m^k by ordinary least squares in log-log space and
// checks k ≈ 2; other benches report mean / stddev / percentiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlsbl::util {

struct Summary {
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;  // sample standard deviation (n-1)
    double median = 0.0;
    double p05 = 0.0;
    double p95 = 0.0;
};

// Summary of a sample; count==0 yields all-zero fields.
Summary summarize(std::span<const double> values);

// Linear interpolation percentile, q in [0, 1]. Empty input yields 0.
double percentile(std::span<const double> values, double q);

struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};

// Ordinary least squares y = slope*x + intercept. Requires xs.size() == ys.size().
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

// Fit y = c * x^k by regressing log y on log x. All inputs must be > 0.
// Returns {slope=k, intercept=log(c), r_squared}.
LinearFit power_law_fit(std::span<const double> xs, std::span<const double> ys);

// Relative spread (max-min)/|mean|; 0 for fewer than two values or zero mean.
double relative_spread(std::span<const double> values);

}  // namespace dlsbl::util
