// Arbitrary-precision signed integer arithmetic.
//
// The DLT closed forms (Algorithms 2.1 / 2.2 of the paper) are rational
// functions of the inputs (w_1..w_m, z). To verify Theorem 2.1 *exactly*
// (all processors finish at the same instant under the optimal allocation),
// the test suite evaluates them over exact rationals. BigInt is the
// magnitude type backing util::Rational.
//
// Representation: sign + little-endian vector of 32-bit limbs, no leading
// zero limbs, zero is canonical (empty limb vector, non-negative sign).
#pragma once

#include <cstdint>
#include <compare>
#include <string>
#include <string_view>
#include <vector>

namespace dlsbl::util {

class BigInt {
 public:
    BigInt() = default;
    BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor) intentional implicit
    explicit BigInt(std::string_view decimal);

    static BigInt from_decimal(std::string_view decimal);

    [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
    [[nodiscard]] bool is_negative() const noexcept { return negative_; }
    [[nodiscard]] int sign() const noexcept {
        return is_zero() ? 0 : (negative_ ? -1 : 1);
    }

    [[nodiscard]] BigInt abs() const;
    [[nodiscard]] BigInt negated() const;

    BigInt& operator+=(const BigInt& rhs);
    BigInt& operator-=(const BigInt& rhs);
    BigInt& operator*=(const BigInt& rhs);
    BigInt& operator/=(const BigInt& rhs);  // truncating division (C++ semantics)
    BigInt& operator%=(const BigInt& rhs);  // remainder with sign of dividend

    friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
    friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
    friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
    friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
    friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
    BigInt operator-() const { return negated(); }

    friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
        return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
    }
    friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) noexcept;

    // Quotient and remainder in one pass; remainder has the dividend's sign.
    static void div_mod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem);

    static BigInt gcd(BigInt a, BigInt b);
    static BigInt pow(const BigInt& base, std::uint64_t exp);

    [[nodiscard]] std::string to_string() const;

    // Lossy conversion for reporting; exact when the value fits a double.
    [[nodiscard]] double to_double() const;

    // Number of significant bits of the magnitude (0 for zero).
    [[nodiscard]] std::size_t bit_length() const noexcept;

    // Fits in an int64_t?
    [[nodiscard]] bool fits_int64() const noexcept;
    [[nodiscard]] std::int64_t to_int64() const;  // precondition: fits_int64()

 private:
    // |a| vs |b|
    static int compare_magnitude(const std::vector<std::uint32_t>& a,
                                 const std::vector<std::uint32_t>& b) noexcept;
    static std::vector<std::uint32_t> add_magnitude(const std::vector<std::uint32_t>& a,
                                                    const std::vector<std::uint32_t>& b);
    // precondition |a| >= |b|
    static std::vector<std::uint32_t> sub_magnitude(const std::vector<std::uint32_t>& a,
                                                    const std::vector<std::uint32_t>& b);
    static std::vector<std::uint32_t> mul_magnitude(const std::vector<std::uint32_t>& a,
                                                    const std::vector<std::uint32_t>& b);
    void trim() noexcept;
    void set_from_int64(std::int64_t v);

    bool negative_ = false;
    std::vector<std::uint32_t> limbs_;  // little-endian base 2^32
};

}  // namespace dlsbl::util
