#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dlsbl::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("Table: row width mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string Table::format_double(double v, int precision) {
    char buf[64];
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    }
    return buf;
}

void Table::add_numeric_row(const std::vector<double>& cells) {
    std::vector<std::string> row;
    row.reserve(cells.size());
    for (double v : cells) row.push_back(format_double(v, precision_));
    add_row(std::move(row));
}

std::string Table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto render_line = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string sep = "+";
    for (std::size_t w : widths) sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    std::string out = sep + render_line(headers_) + sep;
    for (const auto& row : rows_) out += render_line(row);
    out += sep;
    return out;
}

}  // namespace dlsbl::util
