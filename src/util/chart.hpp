// ASCII charts: line/scatter plots and Gantt timelines.
//
// The Gantt renderer reproduces the paper's Figures 1-3 (bus-network timing
// diagrams) directly in bench output; the scatter plot renders utility-vs-bid
// curves for the strategyproofness experiment.
#pragma once

#include <string>
#include <vector>

namespace dlsbl::util {

// A named series of (x, y) points.
struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
};

struct ChartOptions {
    int width = 72;    // plot columns
    int height = 20;   // plot rows
    std::string x_label = "x";
    std::string y_label = "y";
};

// Renders one or more series on shared axes. Each series gets a distinct
// glyph (* + o x # @ in order). Points outside the common range are clamped.
std::string render_scatter(const std::vector<Series>& series, const ChartOptions& options);

// One horizontal bar per activity; activities on the same row label are
// rendered in the same lane (used for a processor's comm + compute phases).
struct GanttBar {
    std::string lane;   // e.g. "P3"
    double start = 0.0;
    double end = 0.0;
    char glyph = '=';   // '-' for communication, '#' for computation, ...
};

struct GanttOptions {
    int width = 72;
    std::string time_label = "time";
};

std::string render_gantt(const std::vector<GanttBar>& bars, const GanttOptions& options);

}  // namespace dlsbl::util
