// Deterministic pseudo-random number generation for experiments.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64 — fast, high
// quality, and fully reproducible across platforms, which matters because
// every experiment in EXPERIMENTS.md is keyed by its seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dlsbl::util {

// splitmix64: used to expand a single 64-bit seed into xoshiro state; also a
// fine standalone generator for hashing-style mixing.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// Seed of independent stream `stream` derived from `root_seed`. Streams are
// decorrelated by two splitmix64 rounds with the stream index folded in
// between, so (root, i) and (root, j) give unrelated generators for i != j,
// and the same (root, stream) pair always gives the same seed — the basis of
// the exec::RunExecutor determinism contract (per-run results depend only on
// the root seed and the run's submission index, never on thread scheduling).
constexpr std::uint64_t derive_seed(std::uint64_t root_seed,
                                    std::uint64_t stream) noexcept {
    std::uint64_t state = root_seed;
    const std::uint64_t mixed_root = splitmix64_next(state);
    state = mixed_root ^ (stream * 0xbf58476d1ce4e5b9ull);
    return splitmix64_next(state);
}

class Xoshiro256 {
 public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64_next(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // Uniform double in [0, 1): 53 random mantissa bits.
    double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    // Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

    // Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
    std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
        const std::uint64_t range = hi - lo + 1;
        if (range == 0) return (*this)();  // full 64-bit range
        const std::uint64_t limit = max() - max() % range;
        std::uint64_t draw;
        do {
            draw = (*this)();
        } while (draw >= limit);
        return lo + draw % range;
    }

    // Marsaglia polar method.
    double normal(double mean = 0.0, double stddev = 1.0) noexcept;

    // Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& values) noexcept {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(uniform_int(0, i - 1));
            using std::swap;
            swap(values[i - 1], values[j]);
        }
    }

    // Derive an independent child stream (for per-agent randomness).
    Xoshiro256 split() noexcept { return Xoshiro256{(*this)()}; }

 private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

}  // namespace dlsbl::util
