#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlsbl::util {

double percentile(std::span<const double> values, double q) {
    if (values.empty()) return 0.0;
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
    Summary s;
    s.count = values.size();
    if (values.empty()) return s;
    s.min = *std::min_element(values.begin(), values.end());
    s.max = *std::max_element(values.begin(), values.end());
    double sum = 0.0;
    for (double v : values) sum += v;
    s.mean = sum / static_cast<double>(values.size());
    if (values.size() > 1) {
        double ss = 0.0;
        for (double v : values) ss += (v - s.mean) * (v - s.mean);
        s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
    }
    s.median = percentile(values, 0.5);
    s.p05 = percentile(values, 0.05);
    s.p95 = percentile(values, 0.95);
    return s;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size()) throw std::invalid_argument("linear_fit: size mismatch");
    if (xs.size() < 2) throw std::invalid_argument("linear_fit: need >= 2 points");
    const auto n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    LinearFit fit;
    // Exact-zero guard before dividing; near-zero denominators are a valid
    // (ill-conditioned) fit, not an error. DLSBL_LINT_ALLOW(float-equality)
    if (denom == 0.0) throw std::invalid_argument("linear_fit: degenerate x values");
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    const double ss_tot = syy - sy * sy / n;
    if (ss_tot <= 0.0) {
        fit.r_squared = 1.0;  // constant y, perfectly explained
    } else {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
            ss_res += r * r;
        }
        fit.r_squared = 1.0 - ss_res / ss_tot;
    }
    return fit;
}

LinearFit power_law_fit(std::span<const double> xs, std::span<const double> ys) {
    std::vector<double> lx(xs.size()), ly(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] <= 0.0 || ys[i] <= 0.0) {
            throw std::invalid_argument("power_law_fit: inputs must be positive");
        }
        lx[i] = std::log(xs[i]);
        ly[i] = std::log(ys[i]);
    }
    return linear_fit(lx, ly);
}

double relative_spread(std::span<const double> values) {
    if (values.size() < 2) return 0.0;
    const Summary s = summarize(values);
    // Division-by-exact-zero guard. DLSBL_LINT_ALLOW(float-equality)
    if (s.mean == 0.0) return 0.0;
    return (s.max - s.min) / std::abs(s.mean);
}

}  // namespace dlsbl::util
