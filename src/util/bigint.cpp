#include "util/bigint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlsbl::util {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}  // namespace

BigInt::BigInt(std::int64_t v) { set_from_int64(v); }

void BigInt::set_from_int64(std::int64_t v) {
    negative_ = v < 0;
    limbs_.clear();
    // Avoid UB on INT64_MIN: widen through unsigned.
    std::uint64_t mag = negative_ ? (~static_cast<std::uint64_t>(v) + 1ull)
                                  : static_cast<std::uint64_t>(v);
    while (mag != 0) {
        limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffull));
        mag >>= 32;
    }
    if (limbs_.empty()) negative_ = false;
}

BigInt::BigInt(std::string_view decimal) { *this = from_decimal(decimal); }

BigInt BigInt::from_decimal(std::string_view s) {
    if (s.empty()) throw std::invalid_argument("BigInt: empty decimal string");
    bool neg = false;
    std::size_t i = 0;
    if (s[0] == '+' || s[0] == '-') {
        neg = s[0] == '-';
        i = 1;
    }
    if (i == s.size()) throw std::invalid_argument("BigInt: sign without digits");
    BigInt result;
    const BigInt ten{10};
    for (; i < s.size(); ++i) {
        char c = s[i];
        if (c < '0' || c > '9') throw std::invalid_argument("BigInt: invalid digit");
        result *= ten;
        result += BigInt{c - '0'};
    }
    if (neg && !result.is_zero()) result.negative_ = true;
    return result;
}

void BigInt::trim() noexcept {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
    if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::abs() const {
    BigInt r = *this;
    r.negative_ = false;
    return r;
}

BigInt BigInt::negated() const {
    BigInt r = *this;
    if (!r.is_zero()) r.negative_ = !r.negative_;
    return r;
}

int BigInt::compare_magnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) noexcept {
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
    for (std::size_t i = a.size(); i-- > 0;) {
        if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    return 0;
}

std::vector<std::uint32_t> BigInt::add_magnitude(const std::vector<std::uint32_t>& a,
                                                 const std::vector<std::uint32_t>& b) {
    std::vector<std::uint32_t> out;
    out.reserve(std::max(a.size(), b.size()) + 1);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
        std::uint64_t sum = carry;
        if (i < a.size()) sum += a[i];
        if (i < b.size()) sum += b[i];
        out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffull));
        carry = sum >> 32;
    }
    if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
    return out;
}

std::vector<std::uint32_t> BigInt::sub_magnitude(const std::vector<std::uint32_t>& a,
                                                 const std::vector<std::uint32_t>& b) {
    std::vector<std::uint32_t> out;
    out.reserve(a.size());
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                            (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
        if (diff < 0) {
            diff += static_cast<std::int64_t>(kBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.push_back(static_cast<std::uint32_t>(diff));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
}

std::vector<std::uint32_t> BigInt::mul_magnitude(const std::vector<std::uint32_t>& a,
                                                 const std::vector<std::uint32_t>& b) {
    if (a.empty() || b.empty()) return {};
    std::vector<std::uint32_t> out(a.size() + b.size(), 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < b.size(); ++j) {
            std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] + out[i + j] + carry;
            out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffull);
            carry = cur >> 32;
        }
        std::size_t k = i + b.size();
        while (carry != 0) {
            std::uint64_t cur = out[k] + carry;
            out[k] = static_cast<std::uint32_t>(cur & 0xffffffffull);
            carry = cur >> 32;
            ++k;
        }
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
    if (negative_ == rhs.negative_) {
        limbs_ = add_magnitude(limbs_, rhs.limbs_);
    } else {
        int cmp = compare_magnitude(limbs_, rhs.limbs_);
        if (cmp == 0) {
            limbs_.clear();
            negative_ = false;
        } else if (cmp > 0) {
            limbs_ = sub_magnitude(limbs_, rhs.limbs_);
        } else {
            limbs_ = sub_magnitude(rhs.limbs_, limbs_);
            negative_ = rhs.negative_;
        }
    }
    trim();
    return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += rhs.negated(); }

BigInt& BigInt::operator*=(const BigInt& rhs) {
    bool neg = negative_ != rhs.negative_;
    limbs_ = mul_magnitude(limbs_, rhs.limbs_);
    negative_ = !limbs_.empty() && neg;
    return *this;
}

void BigInt::div_mod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem) {
    if (den.is_zero()) throw std::domain_error("BigInt: division by zero");
    // Magnitude long division, bit by bit (simple and adequate: operands in
    // the exact-verification path stay small, a few thousand bits at most).
    const std::size_t nbits = num.bit_length();
    BigInt q, r;
    q.limbs_.assign((nbits + 31) / 32, 0);
    for (std::size_t i = nbits; i-- > 0;) {
        // r = (r << 1) | bit_i(num)
        std::uint32_t carry = 0;
        for (auto& limb : r.limbs_) {
            std::uint32_t next = limb >> 31;
            limb = (limb << 1) | carry;
            carry = next;
        }
        if (carry != 0) r.limbs_.push_back(carry);
        const std::uint32_t bit = (num.limbs_[i / 32] >> (i % 32)) & 1u;
        if (bit != 0) {
            if (r.limbs_.empty()) r.limbs_.push_back(0);
            r.limbs_[0] |= 1u;
        }
        if (compare_magnitude(r.limbs_, den.limbs_) >= 0) {
            r.limbs_ = sub_magnitude(r.limbs_, den.limbs_);
            q.limbs_[i / 32] |= (1u << (i % 32));
        }
    }
    q.trim();
    r.trim();
    q.negative_ = !q.limbs_.empty() && (num.negative_ != den.negative_);
    r.negative_ = !r.limbs_.empty() && num.negative_;
    quot = std::move(q);
    rem = std::move(r);
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
    BigInt q, r;
    div_mod(*this, rhs, q, r);
    *this = std::move(q);
    return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
    BigInt q, r;
    div_mod(*this, rhs, q, r);
    *this = std::move(r);
    return *this;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) noexcept {
    if (a.negative_ != b.negative_) {
        return a.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
    }
    int cmp = BigInt::compare_magnitude(a.limbs_, b.limbs_);
    if (a.negative_) cmp = -cmp;
    if (cmp < 0) return std::strong_ordering::less;
    if (cmp > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
    a.negative_ = false;
    b.negative_ = false;
    while (!b.is_zero()) {
        BigInt q, r;
        div_mod(a, b, q, r);
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

BigInt BigInt::pow(const BigInt& base, std::uint64_t exp) {
    BigInt result{1};
    BigInt acc = base;
    while (exp != 0) {
        if (exp & 1ull) result *= acc;
        exp >>= 1;
        if (exp != 0) acc *= acc;
    }
    return result;
}

std::size_t BigInt::bit_length() const noexcept {
    if (limbs_.empty()) return 0;
    std::uint32_t top = limbs_.back();
    std::size_t bits = (limbs_.size() - 1) * 32;
    while (top != 0) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

bool BigInt::fits_int64() const noexcept {
    const std::size_t n = bit_length();
    if (n < 64) return true;
    if (n > 64) return false;
    // Exactly 64 bits of magnitude: only INT64_MIN fits.
    return negative_ && limbs_.size() == 2 && limbs_[0] == 0 && limbs_[1] == 0x80000000u;
}

std::int64_t BigInt::to_int64() const {
    std::uint64_t mag = 0;
    if (!limbs_.empty()) mag = limbs_[0];
    if (limbs_.size() > 1) mag |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return negative_ ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
}

std::string BigInt::to_string() const {
    if (is_zero()) return "0";
    // Repeated division by 10^9 for decimal conversion.
    std::vector<std::uint32_t> mag = limbs_;
    std::string digits;
    while (!mag.empty()) {
        std::uint64_t rem = 0;
        for (std::size_t i = mag.size(); i-- > 0;) {
            std::uint64_t cur = (rem << 32) | mag[i];
            mag[i] = static_cast<std::uint32_t>(cur / 1000000000ull);
            rem = cur % 1000000000ull;
        }
        while (!mag.empty() && mag.back() == 0) mag.pop_back();
        for (int d = 0; d < 9; ++d) {
            digits.push_back(static_cast<char>('0' + rem % 10));
            rem /= 10;
        }
    }
    while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
    if (negative_) digits.push_back('-');
    std::reverse(digits.begin(), digits.end());
    return digits;
}

double BigInt::to_double() const {
    double value = 0.0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        value = value * 4294967296.0 + static_cast<double>(limbs_[i]);
    }
    return negative_ ? -value : value;
}

}  // namespace dlsbl::util
