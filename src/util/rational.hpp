// Exact rational arithmetic over BigInt.
//
// Used by the test suite and the optimality bench to evaluate the DLT
// closed forms (Algorithms 2.1 / 2.2) without floating-point error, so
// Theorem 2.1's equal-finish-time condition can be checked with ==.
//
// Invariant: denominator > 0, gcd(|num|, den) == 1, zero is 0/1.
#pragma once

#include <compare>
#include <string>

#include "util/bigint.hpp"

namespace dlsbl::util {

class Rational {
 public:
    Rational() : num_(0), den_(1) {}
    Rational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT implicit by design
    Rational(BigInt numerator, BigInt denominator);

    // Parse "a/b" or "a".
    static Rational parse(std::string_view text);

    // Exact conversion of a double (every finite double is a rational with a
    // power-of-two denominator).
    static Rational from_double(double value);

    [[nodiscard]] const BigInt& numerator() const noexcept { return num_; }
    [[nodiscard]] const BigInt& denominator() const noexcept { return den_; }
    [[nodiscard]] bool is_zero() const noexcept { return num_.is_zero(); }
    [[nodiscard]] int sign() const noexcept { return num_.sign(); }

    Rational& operator+=(const Rational& rhs);
    Rational& operator-=(const Rational& rhs);
    Rational& operator*=(const Rational& rhs);
    Rational& operator/=(const Rational& rhs);

    friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
    friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
    friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
    friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }
    Rational operator-() const;

    [[nodiscard]] Rational reciprocal() const;
    [[nodiscard]] Rational abs() const;

    friend bool operator==(const Rational& a, const Rational& b) noexcept {
        return a.num_ == b.num_ && a.den_ == b.den_;
    }
    friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

    [[nodiscard]] std::string to_string() const;
    [[nodiscard]] double to_double() const;

 private:
    void normalize();

    BigInt num_;
    BigInt den_;
};

}  // namespace dlsbl::util
