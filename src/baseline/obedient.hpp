// The classical-DLT baseline: scheduling with the obedience assumption the
// paper argues against (§1).
//
// A naive scheduler trusts reported w values, computes the BUS-LINEAR
// allocation, and pays each processor its reported cost α_i(b)·b_i (cost
// reimbursement at the claimed rate — the natural contract when processors
// are assumed honest). No verification, no bonus, no fines.
//
// Under strategic agents this is manipulable in two ways that bench E13
// quantifies against DLS-BL-NCP:
//   * profit manipulation — overbid: you receive a smaller share but are
//     paid above your true cost for every unit, netting a pure profit on
//     the lie (and you can idle to mask it, since nothing is verified);
//   * makespan damage — the schedule is optimal for the *reported* values,
//     so every lie inflates the real finishing time relative to the
//     schedule computed from true values.
#pragma once

#include <vector>

#include "dlt/types.hpp"

namespace dlsbl::baseline {

struct ObedientOutcome {
    dlt::LoadAllocation alpha;        // allocation computed from the reports
    std::vector<double> paid;          // α_i(b) · b_i
    std::vector<double> true_cost;     // α_i(b) · w_i (agents run at capacity)
    std::vector<double> profit;        // paid - true_cost
    double scheduled_makespan = 0.0;   // what the naive scheduler believes
    double realized_makespan = 0.0;    // with true execution rates
};

// Runs the naive trusted scheduler on reported values `bids` for a system
// whose true per-unit times are `true_w`.
ObedientOutcome run_obedient(dlt::NetworkKind kind, double z,
                             const std::vector<double>& true_w,
                             const std::vector<double>& bids);

struct ManipulationGain {
    double honest_profit = 0.0;    // agent's profit when everyone is truthful
    double deviant_profit = 0.0;   // its best profit over the bid-factor sweep
    double best_factor = 1.0;      // the factor achieving it
    double makespan_inflation = 0.0;  // realized/true-optimal makespan - 1 at that lie
};

// Sweeps bid factors for agent `i` (others truthful) and reports the most
// profitable manipulation under the obedient baseline.
ManipulationGain best_manipulation(dlt::NetworkKind kind, double z,
                                   const std::vector<double>& true_w, std::size_t i,
                                   const std::vector<double>& factors);

}  // namespace dlsbl::baseline
