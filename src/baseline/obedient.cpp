#include "baseline/obedient.hpp"

#include <algorithm>
#include <stdexcept>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"

namespace dlsbl::baseline {

ObedientOutcome run_obedient(dlt::NetworkKind kind, double z,
                             const std::vector<double>& true_w,
                             const std::vector<double>& bids) {
    if (true_w.size() != bids.size()) {
        throw std::invalid_argument("run_obedient: size mismatch");
    }
    dlt::ProblemInstance reported{kind, z, bids};
    ObedientOutcome out;
    out.alpha = dlt::optimal_allocation(reported);
    out.scheduled_makespan = dlt::makespan(reported, out.alpha);
    // The schedule runs with the processors' *true* speeds.
    out.realized_makespan = dlt::makespan_generic<double>(
        kind, std::span<const double>(out.alpha), std::span<const double>(true_w), z);
    const std::size_t m = bids.size();
    out.paid.resize(m);
    out.true_cost.resize(m);
    out.profit.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        out.paid[i] = out.alpha[i] * bids[i];
        out.true_cost[i] = out.alpha[i] * true_w[i];
        out.profit[i] = out.paid[i] - out.true_cost[i];
    }
    return out;
}

ManipulationGain best_manipulation(dlt::NetworkKind kind, double z,
                                   const std::vector<double>& true_w, std::size_t i,
                                   const std::vector<double>& factors) {
    if (i >= true_w.size()) throw std::out_of_range("best_manipulation: bad index");
    ManipulationGain gain;
    const auto honest = run_obedient(kind, z, true_w, true_w);
    gain.honest_profit = honest.profit[i];
    gain.deviant_profit = honest.profit[i];

    dlt::ProblemInstance true_instance{kind, z, true_w};
    const double true_optimal = dlt::optimal_makespan(true_instance);

    for (double factor : factors) {
        auto bids = true_w;
        bids[i] = factor * true_w[i];
        const auto outcome = run_obedient(kind, z, true_w, bids);
        if (outcome.profit[i] > gain.deviant_profit) {
            gain.deviant_profit = outcome.profit[i];
            gain.best_factor = factor;
            gain.makespan_inflation = outcome.realized_makespan / true_optimal - 1.0;
        }
    }
    return gain;
}

}  // namespace dlsbl::baseline
