// Deterministic discrete-event simulation kernel.
//
// Events are (time, sequence#) ordered: two events at the same timestamp
// fire in scheduling order, so a run is a pure function of its inputs —
// protocol tests compare traces exactly. Time is simulated seconds;
// nothing here touches wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace dlsbl::sim {

class Simulator {
 public:
    using Callback = std::function<void()>;

    [[nodiscard]] double now() const noexcept { return now_; }

    // Schedules `fn` at absolute simulated time `time` (>= now).
    void schedule_at(double time, Callback fn);

    // Schedules `fn` `delay` seconds from now (delay >= 0).
    void schedule_after(double delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

    // Runs events until the queue drains (or `max_events` fire — a runaway
    // guard; exceeding it throws, since a correct protocol run terminates).
    void run(std::uint64_t max_events = 10'000'000);

    // Fires the single next event; returns false when the queue is empty.
    bool step();

    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
    [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

 private:
    struct Event {
        double time;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    double now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t fired_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dlsbl::sim
