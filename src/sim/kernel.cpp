#include "sim/kernel.hpp"

#include <cmath>

namespace dlsbl::sim {

void Simulator::schedule_at(double time, Callback fn) {
    if (!std::isfinite(time)) throw std::invalid_argument("Simulator: non-finite time");
    if (time < now_) throw std::invalid_argument("Simulator: scheduling into the past");
    if (!fn) throw std::invalid_argument("Simulator: empty callback");
    queue_.push(Event{time, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
    if (queue_.empty()) return false;
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle (shared state stays cheap via std::function
    // small-object or ref-counted captures).
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++fired_;
    event.fn();
    return true;
}

void Simulator::run(std::uint64_t max_events) {
    while (step()) {
        if (fired_ > max_events) {
            throw std::runtime_error("Simulator: event budget exceeded (runaway run?)");
        }
    }
}

}  // namespace dlsbl::sim
