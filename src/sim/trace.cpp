#include "sim/trace.hpp"

#include <cstdio>

namespace dlsbl::sim {

const char* to_string(TraceKind kind) noexcept {
    switch (kind) {
        case TraceKind::kMessageSent: return "msg-sent";
        case TraceKind::kMessageDelivered: return "msg-delivered";
        case TraceKind::kLoadTransferStart: return "load-start";
        case TraceKind::kLoadTransferEnd: return "load-end";
        case TraceKind::kComputeStart: return "compute-start";
        case TraceKind::kComputeEnd: return "compute-end";
        case TraceKind::kPhaseChange: return "phase";
        case TraceKind::kVerdict: return "verdict";
        case TraceKind::kNote: return "note";
    }
    return "?";
}

void TraceRecorder::record(double time, TraceKind kind, std::string actor,
                           std::string detail) {
    events_.push_back(TraceEvent{time, kind, std::move(actor), std::move(detail)});
}

std::vector<TraceEvent> TraceRecorder::filter(TraceKind kind) const {
    std::vector<TraceEvent> out;
    for (const auto& event : events_) {
        if (event.kind == kind) out.push_back(event);
    }
    return out;
}

std::vector<TraceEvent> TraceRecorder::filter_actor(const std::string& actor) const {
    std::vector<TraceEvent> out;
    for (const auto& event : events_) {
        if (event.actor == actor) out.push_back(event);
    }
    return out;
}

std::vector<util::GanttBar> gantt_from_trace(const TraceRecorder& trace) {
    std::vector<util::GanttBar> bars;
    // Load transfers: match start/end FIFO (the bus is one-port, so
    // transfers never interleave).
    std::vector<const TraceEvent*> open_transfers;
    std::vector<std::pair<std::string, double>> open_computes;  // actor -> start
    for (const auto& event : trace.events()) {
        switch (event.kind) {
            case TraceKind::kLoadTransferStart:
                open_transfers.push_back(&event);
                break;
            case TraceKind::kLoadTransferEnd: {
                if (!open_transfers.empty()) {
                    bars.push_back(util::GanttBar{"BUS", open_transfers.front()->time,
                                                  event.time, '-'});
                    open_transfers.erase(open_transfers.begin());
                }
                break;
            }
            case TraceKind::kComputeStart:
                open_computes.emplace_back(event.actor, event.time);
                break;
            case TraceKind::kComputeEnd: {
                for (auto it = open_computes.begin(); it != open_computes.end(); ++it) {
                    if (it->first == event.actor) {
                        bars.push_back(
                            util::GanttBar{event.actor, it->second, event.time, '#'});
                        open_computes.erase(it);
                        break;
                    }
                }
                break;
            }
            default:
                break;
        }
    }
    return bars;
}

std::string TraceRecorder::render() const {
    std::string out;
    char buf[64];
    for (const auto& event : events_) {
        std::snprintf(buf, sizeof(buf), "%12.6f  %-14s ", event.time,
                      to_string(event.kind));
        out += buf;
        out += event.actor + "  " + event.detail + "\n";
    }
    return out;
}

}  // namespace dlsbl::sim
