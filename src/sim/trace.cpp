#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace dlsbl::sim {

const char* to_string(TraceKind kind) noexcept {
    switch (kind) {
        case TraceKind::kMessageSent: return "msg-sent";
        case TraceKind::kMessageDelivered: return "msg-delivered";
        case TraceKind::kLoadTransferStart: return "load-start";
        case TraceKind::kLoadTransferEnd: return "load-end";
        case TraceKind::kComputeStart: return "compute-start";
        case TraceKind::kComputeEnd: return "compute-end";
        case TraceKind::kPhaseChange: return "phase";
        case TraceKind::kVerdict: return "verdict";
        case TraceKind::kNote: return "note";
        case TraceKind::kSpanBegin: return "span-begin";
        case TraceKind::kSpanEnd: return "span-end";
        case TraceKind::kChurn: return "churn";
    }
    return "?";
}

void TraceRecorder::record(double time, TraceKind kind, std::string actor,
                           std::string detail, std::uint64_t span_id,
                           std::uint64_t parent_id) {
    events_.push_back(TraceEvent{time, kind, std::move(actor), std::move(detail),
                                 span_id, parent_id});
}

std::vector<TraceEvent> TraceRecorder::filter(TraceKind kind) const {
    std::vector<TraceEvent> out;
    for (const auto& event : events_) {
        if (event.kind == kind) out.push_back(event);
    }
    return out;
}

std::vector<TraceEvent> TraceRecorder::filter_actor(const std::string& actor) const {
    std::vector<TraceEvent> out;
    for (const auto& event : events_) {
        if (event.actor == actor) out.push_back(event);
    }
    return out;
}

std::vector<util::GanttBar> gantt_from_trace(const TraceRecorder& trace) {
    std::vector<util::GanttBar> bars;
    // Load transfers: match start/end FIFO (the bus is one-port, so
    // transfers never interleave).
    std::vector<const TraceEvent*> open_transfers;
    std::vector<std::pair<std::string, double>> open_computes;  // actor -> start
    // Horizon for unmatched starts (truncated/terminated runs record a
    // start whose end never fired): the latest time anywhere in the trace.
    // Note trace times are not monotone — transfer starts are stamped with
    // their (future) bus-grant time — so scan rather than take back().
    double horizon = 0.0;
    for (const auto& event : trace.events()) horizon = std::max(horizon, event.time);
    for (const auto& event : trace.events()) {
        switch (event.kind) {
            case TraceKind::kLoadTransferStart:
                open_transfers.push_back(&event);
                break;
            case TraceKind::kLoadTransferEnd: {
                if (!open_transfers.empty()) {
                    bars.push_back(util::GanttBar{"BUS", open_transfers.front()->time,
                                                  event.time, '-'});
                    open_transfers.erase(open_transfers.begin());
                }
                break;
            }
            case TraceKind::kComputeStart:
                open_computes.emplace_back(event.actor, event.time);
                break;
            case TraceKind::kComputeEnd: {
                for (auto it = open_computes.begin(); it != open_computes.end(); ++it) {
                    if (it->first == event.actor) {
                        bars.push_back(
                            util::GanttBar{event.actor, it->second, event.time, '#'});
                        open_computes.erase(it);
                        break;
                    }
                }
                break;
            }
            default:
                break;
        }
    }
    // Tolerate truncated traces: an activity that started but never ended
    // is drawn up to the trace horizon instead of being dropped.
    for (const TraceEvent* start : open_transfers) {
        bars.push_back(
            util::GanttBar{"BUS", start->time, std::max(start->time, horizon), '-'});
    }
    for (const auto& [actor, start] : open_computes) {
        bars.push_back(util::GanttBar{actor, start, std::max(start, horizon), '#'});
    }
    return bars;
}

std::string TraceRecorder::render() const {
    std::string out;
    char buf[64];
    for (const auto& event : events_) {
        std::snprintf(buf, sizeof(buf), "%12.6f  %-14s ", event.time,
                      to_string(event.kind));
        out += buf;
        out += event.actor + "  " + event.detail + "\n";
    }
    return out;
}

}  // namespace dlsbl::sim
