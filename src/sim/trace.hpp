// Event trace: an append-only record of everything observable in a run.
//
// Used by tests to assert protocol choreography (who messaged whom, when
// computation started/ended) and by the figure benches to rebuild Gantt
// timelines from the *simulated* execution rather than from the analytic
// model — agreement between the two is itself a test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/chart.hpp"

namespace dlsbl::sim {

enum class TraceKind {
    kMessageSent,
    kMessageDelivered,
    kLoadTransferStart,
    kLoadTransferEnd,
    kComputeStart,
    kComputeEnd,
    kPhaseChange,
    kVerdict,      // referee decisions: fines, rewards, terminations
    kNote,
    kSpanBegin,    // causal span opened (detail = span name)
    kSpanEnd,      // causal span closed
    kChurn,        // fault injection: crash/restart marks, cut/delayed frames
};

const char* to_string(TraceKind kind) noexcept;

struct TraceEvent {
    double time = 0.0;
    TraceKind kind = TraceKind::kNote;
    std::string actor;    // process name
    std::string detail;   // free-form, machine-greppable "key=value ..." text
    // Causal identity (0 = none): `span_id` is the span this event belongs
    // to, `parent_id` its causal parent. Sim stores them as opaque integers;
    // the obs layer (SpanBook / catapult exporter) gives them meaning.
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
};

class TraceRecorder {
 public:
    void record(double time, TraceKind kind, std::string actor, std::string detail,
                std::uint64_t span_id = 0, std::uint64_t parent_id = 0);

    [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }

    [[nodiscard]] std::vector<TraceEvent> filter(TraceKind kind) const;
    [[nodiscard]] std::vector<TraceEvent> filter_actor(const std::string& actor) const;

    // Human-readable dump (one line per event).
    [[nodiscard]] std::string render() const;

    void clear() { events_.clear(); }

 private:
    std::vector<TraceEvent> events_;
};

// Rebuilds a Gantt timeline from a recorded trace: one "BUS" lane carrying
// the load transfers ('-') plus one lane per computing actor ('#'). Pairs
// kLoadTransferStart/kLoadTransferEnd (matched FIFO per sender, consistent
// with the one-port bus) and kComputeStart/kComputeEnd. Lets callers draw
// the *simulated* execution next to the analytic diagram.
std::vector<util::GanttBar> gantt_from_trace(const TraceRecorder& trace);

}  // namespace dlsbl::sim
