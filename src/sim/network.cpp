#include "sim/network.hpp"

#include <stdexcept>

namespace dlsbl::sim {

Network::Network(Simulator& simulator, double unit_comm_time, double control_latency,
                 double control_seconds_per_byte)
    : simulator_(simulator),
      z_(unit_comm_time),
      control_latency_(control_latency),
      control_seconds_per_byte_(control_seconds_per_byte) {
    if (unit_comm_time < 0.0 || control_latency < 0.0 || control_seconds_per_byte < 0.0) {
        throw std::invalid_argument("Network: negative timing parameter");
    }
}

double Network::dispatch_control(Envelope envelope) {
    const double occupancy = control_occupancy(envelope.payload.size());
    double deliver_at = simulator_.now() + control_latency_;
    if (occupancy > 0.0) {
        // Bandwidth-charged: the message holds the one-port bus like a load
        // transfer does.
        const double start = std::max(simulator_.now(), bus_busy_until_);
        bus_busy_until_ = start + occupancy;
        deliver_at = bus_busy_until_ + control_latency_;
    }
    simulator_.schedule_at(deliver_at,
                           [this, e = std::move(envelope)]() mutable { deliver(std::move(e)); });
    return deliver_at;
}

void Network::attach(Process& process) {
    const auto [it, inserted] = processes_.emplace(process.name(), &process);
    (void)it;
    if (!inserted) {
        throw std::invalid_argument("Network: duplicate process name: " + process.name());
    }
}

bool Network::has_process(const std::string& name) const {
    return processes_.contains(name);
}

void Network::start() {
    for (auto& [name, process] : processes_) {
        Process* p = process;
        simulator_.schedule_after(0.0, [p] { p->on_start(); });
    }
}

void Network::deliver(Envelope envelope, bool redelivery) {
    const auto it = processes_.find(envelope.to);
    if (it == processes_.end()) {
        throw std::logic_error("Network: message to unknown process: " + envelope.to);
    }
    if (interceptor_) {
        const DeliveryRuling ruling = interceptor_(envelope, simulator_.now(), redelivery);
        if (ruling.action == DeliveryAction::kDrop) {
            trace_.record(simulator_.now(), TraceKind::kChurn, envelope.to, ruling.note,
                          envelope.span_id);
            return;
        }
        if (ruling.action == DeliveryAction::kDelay) {
            trace_.record(simulator_.now(), TraceKind::kChurn, envelope.to, ruling.note,
                          envelope.span_id);
            simulator_.schedule_after(ruling.delay, [this, e = std::move(envelope)]() mutable {
                deliver(std::move(e), true);
            });
            return;
        }
    }
    trace_.record(simulator_.now(), TraceKind::kMessageDelivered, envelope.to,
                  "from=" + envelope.from + " type=" + std::to_string(envelope.type),
                  envelope.span_id);
    it->second->on_message(envelope);
}

void Network::send(const std::string& from, const std::string& to, std::uint32_t type,
                   util::Bytes payload, std::uint64_t span_id) {
    if (!processes_.contains(to)) {
        throw std::logic_error("Network: unknown recipient: " + to);
    }
    metrics_.count_control(payload.size());
    trace_.record(simulator_.now(), TraceKind::kMessageSent, from,
                  "to=" + to + " type=" + std::to_string(type) +
                      " bytes=" + std::to_string(payload.size()),
                  span_id);
    Envelope envelope{from, to, type, std::move(payload), simulator_.now(), span_id};
    dispatch_control(std::move(envelope));
}

void Network::broadcast(const std::string& from, std::uint32_t type, util::Bytes payload,
                        std::uint64_t span_id) {
    metrics_.count_control(payload.size());
    trace_.record(simulator_.now(), TraceKind::kMessageSent, from,
                  "to=* type=" + std::to_string(type) +
                      " bytes=" + std::to_string(payload.size()),
                  span_id);
    // Atomic broadcast: one bus transmission, simultaneous delivery to all.
    const double occupancy = control_occupancy(payload.size());
    double deliver_at = simulator_.now() + control_latency_;
    if (occupancy > 0.0) {
        const double start = std::max(simulator_.now(), bus_busy_until_);
        bus_busy_until_ = start + occupancy;
        deliver_at = bus_busy_until_ + control_latency_;
    }
    for (const auto& [name, process] : processes_) {
        if (name == from) continue;
        Envelope envelope{from, name, type, payload, simulator_.now(), span_id};
        simulator_.schedule_at(
            deliver_at, [this, e = std::move(envelope)]() mutable { deliver(std::move(e)); });
    }
}

void Network::transfer_load(const std::string& from, const std::string& to, double units,
                            std::uint32_t type, util::Bytes payload,
                            std::uint64_t span_id) {
    if (!processes_.contains(to)) {
        throw std::logic_error("Network: unknown recipient: " + to);
    }
    if (units < 0.0) throw std::invalid_argument("Network: negative load transfer");
    const double start = std::max(simulator_.now(), bus_busy_until_);
    const double end = start + units * z_;
    bus_busy_until_ = end;
    metrics_.count_load_transfer(units);
    trace_.record(start, TraceKind::kLoadTransferStart, from,
                  "to=" + to + " units=" + std::to_string(units), span_id);
    Envelope envelope{from, to, type, std::move(payload), simulator_.now(), span_id};
    simulator_.schedule_at(end, [this, to_name = to, from_name = from, units,
                                 e = std::move(envelope)]() mutable {
        trace_.record(simulator_.now(), TraceKind::kLoadTransferEnd, from_name,
                      "to=" + to_name + " units=" + std::to_string(units),
                      e.span_id);
        deliver(std::move(e));
    });
}

}  // namespace dlsbl::sim
