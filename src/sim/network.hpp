// One-port bus network model (§2 of the paper).
//
// Two traffic classes:
//   * control messages — bids, accusations, payment vectors. Delivered after
//     a configurable constant latency (default 0: the paper's timing model
//     charges only load movement). Broadcast is atomic and reliable, per the
//     paper's assumption ("the network has a reliable, atomic mechanism for
//     broadcasting information").
//   * load transfers — occupy the shared bus exclusively (one-port model):
//     a transfer of α units takes α·z bus seconds and transfers queue FIFO.
//
// The network is protocol-agnostic: payloads are opaque bytes and message
// types are small integers owned by the protocol layer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/kernel.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "util/bytes.hpp"

namespace dlsbl::sim {

struct Envelope {
    std::string from;
    std::string to;            // empty for broadcast
    std::uint32_t type = 0;    // protocol-defined discriminator
    util::Bytes payload;
    double sent_at = 0.0;
    // Causal span of the send (0 = untracked). Receivers parent their own
    // spans/events on it, which is what links cross-processor causality in
    // the JSONL and Chrome-trace exports.
    std::uint64_t span_id = 0;
};

class Process {
 public:
    virtual ~Process() = default;
    // Called once after every process is attached, before any message flows.
    virtual void on_start() {}
    virtual void on_message(const Envelope& envelope) = 0;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

 protected:
    explicit Process(std::string name) : name_(std::move(name)) {}

 private:
    std::string name_;
};

class Network {
 public:
    // control_seconds_per_byte: when > 0, control messages are charged for
    // bandwidth and occupy the shared bus like load transfers do (the
    // paper's complexity model counts their bytes; this knob makes those
    // bytes cost wall-clock time so the mechanism's Θ(m²) overhead becomes
    // measurable — bench E22). 0 keeps the paper's timing model, where only
    // load movement takes time.
    Network(Simulator& simulator, double unit_comm_time, double control_latency = 0.0,
            double control_seconds_per_byte = 0.0);

    // Processes are owned by the caller and must outlive the network.
    void attach(Process& process);
    [[nodiscard]] bool has_process(const std::string& name) const;
    [[nodiscard]] std::size_t process_count() const noexcept { return processes_.size(); }

    // Fires every process's on_start() at the current simulated time.
    void start();

    // Reliable unicast; counted in the communication-complexity metrics.
    // `span_id` (optional) stamps the send's causal span onto the trace
    // records and the delivered envelope.
    void send(const std::string& from, const std::string& to, std::uint32_t type,
              util::Bytes payload, std::uint64_t span_id = 0);

    // Atomic reliable broadcast: every process except the sender receives
    // the identical payload. Counted once (one bus transmission).
    void broadcast(const std::string& from, std::uint32_t type, util::Bytes payload,
                   std::uint64_t span_id = 0);

    // A load transfer of `units` load: waits for the bus, holds it for
    // units * z, then delivers the payload (the block batch) to `to`.
    void transfer_load(const std::string& from, const std::string& to, double units,
                       std::uint32_t type, util::Bytes payload,
                       std::uint64_t span_id = 0);

    // Simulated time at which the bus next becomes free.
    [[nodiscard]] double bus_free_at() const noexcept { return bus_busy_until_; }

    [[nodiscard]] Simulator& simulator() noexcept { return simulator_; }
    [[nodiscard]] NetworkMetrics& metrics() noexcept { return metrics_; }
    [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
    [[nodiscard]] double unit_comm_time() const noexcept { return z_; }

    // Fault-injection hook consulted on every delivery attempt (the network
    // itself stays protocol-agnostic: the interceptor owner interprets the
    // availability plan). kDrop suppresses delivery; kDelay reschedules it
    // `delay` later with redelivery=true (a redelivery is never re-delayed).
    // Either outcome records a TraceKind::kChurn event carrying `note`.
    enum class DeliveryAction { kDeliver, kDrop, kDelay };
    struct DeliveryRuling {
        DeliveryAction action = DeliveryAction::kDeliver;
        double delay = 0.0;
        std::string note;
    };
    using DeliveryInterceptor =
        std::function<DeliveryRuling(const Envelope&, double now, bool redelivery)>;
    void set_delivery_interceptor(DeliveryInterceptor interceptor) {
        interceptor_ = std::move(interceptor);
    }

 private:
    void deliver(Envelope envelope, bool redelivery = false);
    // Time the bus is held for a control message of `bytes` (0 when the
    // bandwidth model is off).
    [[nodiscard]] double control_occupancy(std::size_t bytes) const noexcept {
        return control_seconds_per_byte_ * static_cast<double>(bytes);
    }
    // Schedules delivery honoring bandwidth occupancy + latency; returns
    // the delivery time.
    double dispatch_control(Envelope envelope);

    Simulator& simulator_;
    double z_;
    double control_latency_;
    double control_seconds_per_byte_;
    double bus_busy_until_ = 0.0;
    std::map<std::string, Process*> processes_;
    NetworkMetrics metrics_;
    TraceRecorder trace_;
    DeliveryInterceptor interceptor_;
};

}  // namespace dlsbl::sim
