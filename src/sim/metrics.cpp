#include "sim/metrics.hpp"

namespace dlsbl::sim {

void NetworkMetrics::count_control(std::size_t bytes) {
    ++messages_;
    bytes_ += bytes;
    auto& phase = by_phase_[phase_];
    ++phase.messages;
    phase.bytes += bytes;
}

void NetworkMetrics::count_load_transfer(double units) {
    ++transfers_;
    units_ += units;
}

}  // namespace dlsbl::sim
