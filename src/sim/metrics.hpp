// Communication accounting for the Θ(m²) experiment (Theorem 5.4).
//
// The paper defines communication cost as (number of messages) × (message
// size) and excludes load-unit transfers, so control messages and load
// transfers are tracked separately. Messages are attributed to the protocol
// phase active when they were sent, giving the per-phase breakdown that
// shows Computing Payments dominating.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dlsbl::sim {

struct PhaseCounters {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
};

class NetworkMetrics {
 public:
    void set_phase(std::string phase) { phase_ = std::move(phase); }
    [[nodiscard]] const std::string& phase() const noexcept { return phase_; }

    // A control message (bid, accusation, payment vector, ...). Broadcasts
    // count once per transmission, matching the paper's atomic-broadcast
    // cost model.
    void count_control(std::size_t bytes);

    // A load transfer of `units` load occupying the bus; excluded from the
    // communication-complexity totals per Theorem 5.4's definition.
    void count_load_transfer(double units);

    [[nodiscard]] std::uint64_t control_messages() const noexcept { return messages_; }
    [[nodiscard]] std::uint64_t control_bytes() const noexcept { return bytes_; }
    [[nodiscard]] std::uint64_t load_transfers() const noexcept { return transfers_; }
    [[nodiscard]] double load_units_moved() const noexcept { return units_; }

    [[nodiscard]] const std::map<std::string, PhaseCounters>& by_phase() const noexcept {
        return by_phase_;
    }

 private:
    std::string phase_ = "init";
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t transfers_ = 0;
    double units_ = 0.0;
    std::map<std::string, PhaseCounters> by_phase_;
};

}  // namespace dlsbl::sim
