#include "exec/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace dlsbl::exec {

namespace {

// Mutex-protected per-worker deque. A lock per deque (not per pool) keeps
// contention at "one owner + occasional thief" levels, which is invisible
// next to a protocol run's cost; TSan-clean by construction, unlike a
// hand-rolled Chase-Lev deque.
class TaskDeque {
 public:
    void push_back(std::size_t task) {
        const std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(task);
    }

    // Owner end: pops the task dealt earliest, preserving submission-order
    // locality within a worker.
    bool pop_front(std::size_t& task) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty()) return false;
        task = tasks_.front();
        tasks_.pop_front();
        return true;
    }

    // Thief end.
    bool steal_back(std::size_t& task) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty()) return false;
        task = tasks_.back();
        tasks_.pop_back();
        return true;
    }

 private:
    std::mutex mutex_;
    std::deque<std::size_t> tasks_;
};

}  // namespace

RunExecutor::RunExecutor(ExecutorOptions options) : options_(options) {
    jobs_ = options_.jobs;
    if (jobs_ == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs_ = hw == 0 ? 1 : hw;
    }
}

std::size_t RunExecutor::jobs_from_args(int argc, char** argv, std::size_t fallback) {
    for (int i = 1; i < argc; ++i) {
        if ((std::strcmp(argv[i], "--jobs") == 0 || std::strcmp(argv[i], "-j") == 0) &&
            i + 1 < argc) {
            return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
        }
    }
    // Explicit operator knob for worker count; artifacts are byte-identical
    // at any value, so this cannot break replay. DLSBL_LINT_ALLOW(determinism)
    if (const char* env = std::getenv("DLSBL_JOBS"); env != nullptr && *env != '\0') {
        return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
    return fallback;
}

void RunExecutor::run_tasks(std::size_t count,
                            const std::function<void(RunSlot&)>& body) {
    if (count == 0) return;

    // Per-task artifacts, indexed by submission order.
    std::vector<std::unique_ptr<RunSlot>> slots;
    slots.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        slots.push_back(
            std::make_unique<RunSlot>(i, util::derive_seed(options_.root_seed, i)));
    }
    std::vector<obs::EventBuffer> buffers(count);

    auto run_one = [&](std::size_t task) {
        obs::EventBuffer* capture = options_.capture_events ? &buffers[task] : nullptr;
        obs::EventBuffer* previous = obs::EventLog::set_thread_buffer(capture);
        const std::string run_name = "run-" + std::to_string(task);
        // Liveness stamps: a scrape that lands while the body is still
        // executing sees a per-run series even before the body publishes
        // anything into the slot registry. Gauges add under merge, so the
        // resets keep the global dlsbl_run_active at zero after the batch.
        auto& slot_metrics = slots[task]->metrics();
        slot_metrics.counter("dlsbl_run_started").inc();
        slot_metrics.gauge("dlsbl_run_active").set(1.0);
        if (options_.exporter != nullptr) {
            options_.exporter->attach_run(run_name, &slot_metrics);
        }
        try {
            body(*slots[task]);
        } catch (...) {
            slot_metrics.gauge("dlsbl_run_active").set(0.0);
            if (options_.exporter != nullptr) options_.exporter->detach_run(run_name);
            obs::EventLog::set_thread_buffer(previous);
            throw;
        }
        slot_metrics.gauge("dlsbl_run_active").set(0.0);
        if (options_.exporter != nullptr) options_.exporter->detach_run(run_name);
        obs::EventLog::set_thread_buffer(previous);
    };

    const std::size_t workers = std::min(jobs_, count);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) run_one(i);
    } else {
        // Deal tasks round-robin so every deque starts with an even share;
        // stealing rebalances whatever the deal got wrong.
        std::vector<TaskDeque> deques(workers);
        for (std::size_t i = 0; i < count; ++i) deques[i % workers].push_back(i);

        std::exception_ptr first_error;
        std::mutex error_mutex;
        auto worker_loop = [&](std::size_t me) {
            for (;;) {
                std::size_t task = 0;
                bool found = deques[me].pop_front(task);
                for (std::size_t k = 1; !found && k < workers; ++k) {
                    found = deques[(me + k) % workers].steal_back(task);
                }
                if (!found) return;  // every deque empty: batch is drained
                try {
                    run_one(task);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(workers - 1);
        for (std::size_t t = 1; t < workers; ++t) {
            threads.emplace_back(worker_loop, t);
        }
        worker_loop(0);
        for (auto& thread : threads) thread.join();
        if (first_error) std::rethrow_exception(first_error);
    }

    // Deterministic merge: replay events and fold per-run metrics into the
    // global registry in submission order, independent of which worker ran
    // what when.
    auto& log = obs::EventLog::instance();
    auto& global = obs::MetricsRegistry::global();
    for (std::size_t i = 0; i < count; ++i) {
        if (options_.capture_events) log.replay(buffers[i]);
        global.merge_from(slots[i]->metrics());
    }
}

}  // namespace dlsbl::exec
