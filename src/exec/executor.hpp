// Deterministic parallel execution of independent protocol / DLT runs.
//
//     exec::RunExecutor pool({.jobs = 8, .root_seed = 42});
//     auto rows = pool.map(n, [&](exec::RunSlot& slot) {
//         auto config = make_config(slot.seed());
//         return protocol::run_protocol(config).makespan;
//     });
//
// Determinism contract (the point of this class):
//   * every run's seed is util::derive_seed(root_seed, index) — a pure
//     function of the root seed and the run's submission index, never of
//     which worker picked the task up;
//   * every run's obs events are captured in a per-run EventBuffer
//     (EventLog::set_thread_buffer) and replayed through the process sinks
//     in submission order after the batch, so JSONL artifacts are
//     byte-identical at --jobs 1 and --jobs 64;
//   * every run gets a private MetricsRegistry (RunSlot::metrics()) that is
//     merged into MetricsRegistry::global() in submission order once the
//     batch completes (run_protocol's own global counters are commutative
//     atomic increments, so totals are schedule-independent too);
//   * map() returns results indexed by submission order.
//
// Scheduling is work-stealing: tasks are dealt round-robin onto per-worker
// deques; a worker drains its own deque from the front and steals from the
// back of its neighbours' when empty, so a handful of slow runs (large m,
// hash-heavy signatures) cannot idle the rest of the pool.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "obs/event.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace dlsbl::exec {

struct ExecutorOptions {
    // Worker threads; 0 = one per hardware thread, 1 = run inline on the
    // calling thread (no threads spawned — handy under a debugger).
    std::size_t jobs = 1;
    // Root of the per-run seed derivation.
    std::uint64_t root_seed = 1;
    // When false, runs emit straight to the process sinks (interleaved,
    // nondeterministic order under jobs > 1). Leave on unless you are
    // debugging and want to watch events live.
    bool capture_events = true;
    // Optional live-telemetry hook: each run's private registry is attached
    // to the exporter as "run-<index>" while the run executes (and detached
    // before the registry dies), so a concurrent /metrics scrape sees
    // per-run counters mid-batch. Purely observational — artifacts stay
    // byte-identical with or without it. Must outlive the executor calls.
    obs::MetricsExporter* exporter = nullptr;
};

// Everything one run is allowed to touch: its identity (submission index),
// its derived seed, and a private metrics registry merged into the global
// one in submission order.
class RunSlot {
 public:
    RunSlot(std::size_t index, std::uint64_t seed) : index_(index), seed_(seed) {}

    [[nodiscard]] std::size_t index() const noexcept { return index_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
    // Fresh generator seeded for this run (independent across runs).
    [[nodiscard]] util::Xoshiro256 rng() const noexcept {
        return util::Xoshiro256{seed_};
    }
    [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
    std::size_t index_;
    std::uint64_t seed_;
    obs::MetricsRegistry metrics_;
};

class RunExecutor {
 public:
    explicit RunExecutor(ExecutorOptions options = {});

    // Effective worker count (>= 1; the jobs=0 default is resolved here).
    [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }
    [[nodiscard]] std::uint64_t root_seed() const noexcept { return options_.root_seed; }

    // Parses "--jobs N" / "-j N" out of argv (removing nothing; unknown
    // arguments are ignored) and falls back to the DLSBL_JOBS environment
    // variable, then to `fallback`. Shared by benches and the CLI.
    static std::size_t jobs_from_args(int argc, char** argv, std::size_t fallback = 1);

    // Runs body(slot) for every index in [0, count) and returns the results
    // in submission order. The callable may return void (use for_each) or
    // any move-constructible value.
    template <typename Fn>
    auto map(std::size_t count, Fn&& body)
        -> std::vector<std::invoke_result_t<Fn&, RunSlot&>> {
        using R = std::invoke_result_t<Fn&, RunSlot&>;
        static_assert(!std::is_void_v<R>, "use for_each for void bodies");
        std::vector<std::optional<R>> staged(count);
        run_tasks(count, [&](RunSlot& slot) { staged[slot.index()] = body(slot); });
        std::vector<R> results;
        results.reserve(count);
        for (auto& value : staged) results.push_back(std::move(*value));
        return results;
    }

    template <typename Fn>
    void for_each(std::size_t count, Fn&& body) {
        run_tasks(count, std::function<void(RunSlot&)>(std::forward<Fn>(body)));
    }

 private:
    void run_tasks(std::size_t count, const std::function<void(RunSlot&)>& body);

    ExecutorOptions options_;
    std::size_t jobs_;
};

}  // namespace dlsbl::exec
