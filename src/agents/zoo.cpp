#include "agents/zoo.hpp"

namespace dlsbl::agents {

Strategy truthful() {
    Strategy s;
    s.name = "truthful";
    return s;
}

Strategy misreporter(double bid_factor) {
    Strategy s;
    s.name = bid_factor < 1.0 ? "underbidder" : "overbidder";
    s.bid_factor = bid_factor;
    return s;
}

Strategy underbidder() { return misreporter(0.5); }

Strategy overbidder() { return misreporter(2.0); }

Strategy slow_executor(double exec_factor) {
    Strategy s;
    s.name = "slow_executor";
    s.exec_factor = exec_factor;
    return s;
}

Strategy masked_overbidder(double factor) {
    Strategy s;
    s.name = "masked_overbidder";
    s.bid_factor = factor;
    s.exec_factor = factor;  // runs exactly as slowly as it claimed
    return s;
}

Strategy inconsistent_bidder(double first_factor, double second_factor) {
    Strategy s;
    s.name = "inconsistent_bidder";
    s.bid_factor = first_factor;
    s.second_bid_factor = second_factor;
    return s;
}

Strategy short_shipping_lo(double ship_factor) {
    Strategy s;
    s.name = "short_shipping_lo";
    s.lo_ship_factor = ship_factor;
    return s;
}

Strategy over_shipping_lo(double ship_factor) {
    Strategy s;
    s.name = "over_shipping_lo";
    s.lo_ship_factor = ship_factor;
    return s;
}

Strategy corrupting_lo() {
    Strategy s;
    s.name = "corrupting_lo";
    s.lo_corrupt_blocks = true;
    return s;
}

Strategy refusing_lo() {
    Strategy s;
    s.name = "refusing_lo";
    s.lo_ship_factor = 0.6;
    s.lo_refuse_mediation = true;
    return s;
}

Strategy payment_cheater() {
    Strategy s;
    s.name = "payment_cheater";
    s.corrupt_payment_vector = true;
    return s;
}

Strategy contradictory_payer() {
    Strategy s;
    s.name = "contradictory_payer";
    s.contradictory_payment_vectors = true;
    return s;
}

Strategy bid_vector_tamperer() {
    Strategy s;
    s.name = "bid_vector_tamperer";
    // The referee only requests bid vectors during a dispute, so this
    // deviant provokes one with a false shortage claim and then submits a
    // tampered vector (offense iv on top of offense v).
    s.false_short_claim = true;
    s.tamper_bid_vector = true;
    return s;
}

Strategy false_accuser() {
    Strategy s;
    s.name = "false_accuser";
    s.false_accuse = true;
    return s;
}

Strategy false_short_claimer() {
    Strategy s;
    s.name = "false_short_claimer";
    s.false_short_claim = true;
    return s;
}

Strategy junk_spammer(std::size_t frames) {
    Strategy s;
    s.name = "junk_spammer";
    s.junk_frames = frames;
    return s;
}

Strategy silent_observer() {
    Strategy s;
    s.name = "silent_observer";
    s.report_deviations = false;
    return s;
}

std::vector<Strategy> worker_deviants() {
    // junk_spammer is deliberately absent: unknown-type noise is dropped and
    // counted, not fined, so it doesn't belong in the "every deviant is
    // fined" sweeps. Tests reference it directly.
    return {
        inconsistent_bidder(), payment_cheater(),     contradictory_payer(),
        false_accuser(),       false_short_claimer(), bid_vector_tamperer(),
    };
}

std::vector<Strategy> lo_deviants() {
    return {
        inconsistent_bidder(), short_shipping_lo(), over_shipping_lo(),
        corrupting_lo(),       refusing_lo(),       payment_cheater(),
        contradictory_payer(),
    };
}

std::vector<Strategy> all_deviants() {
    auto out = worker_deviants();
    out.push_back(short_shipping_lo());
    out.push_back(over_shipping_lo());
    out.push_back(corrupting_lo());
    out.push_back(refusing_lo());
    return out;
}

}  // namespace dlsbl::agents
