// The strategy zoo: named agent behaviours covering every manipulation the
// paper discusses.
//
// Valuation manipulations (handled by DLS-BL's payment structure):
//   truthful, underbidder, overbidder, slow_executor, masked_overbidder
// Protocol deviations (§4 offenses (i)-(v), handled by monitoring + fines):
//   inconsistent_bidder, short_shipping_lo, over_shipping_lo,
//   corrupting_lo, refusing_lo, payment_cheater, contradictory_payer,
//   bid_vector_tamperer, false_accuser, false_short_claimer
// Monitoring variants:
//   silent_observer (honest work, never reports — forfeits rewards)
#pragma once

#include <string>
#include <vector>

#include "protocol/strategy.hpp"

namespace dlsbl::agents {

using protocol::Strategy;

// --- honest -----------------------------------------------------------------
Strategy truthful();

// --- valuation manipulation ---------------------------------------------------
// Bids factor * w (factor < 1 claims to be faster, > 1 slower).
Strategy misreporter(double bid_factor);
Strategy underbidder();                 // factor 0.5
Strategy overbidder();                  // factor 2.0
// Bids truthfully but deliberately executes at exec_factor * w (>1).
Strategy slow_executor(double exec_factor = 1.5);
// Overbids and also runs slowly so the observed rate matches the lie.
Strategy masked_overbidder(double factor = 2.0);

// --- protocol deviations ------------------------------------------------------
Strategy inconsistent_bidder(double first_factor = 0.8, double second_factor = 1.6);
Strategy short_shipping_lo(double ship_factor = 0.6);
Strategy over_shipping_lo(double ship_factor = 1.5);
Strategy corrupting_lo();               // ships blocks failing the integrity check
Strategy refusing_lo();                 // short-ships, then refuses mediation
Strategy payment_cheater();             // inflates its own Q entry
Strategy contradictory_payer();         // two different signed payment vectors
Strategy bid_vector_tamperer();         // re-signs its own altered bid entry
Strategy false_accuser();               // fabricated double-bid evidence
Strategy false_short_claimer();         // lies about missing load units
Strategy junk_spammer(std::size_t frames = 3);  // unknown-type frame noise

// --- monitoring variants --------------------------------------------------------
Strategy silent_observer();             // honest but never reports deviations

// Every deviant strategy in one list (for the compliance benches).
std::vector<Strategy> all_deviants();

// Deviants exercisable by a non-LO processor (LO-specific ones excluded).
std::vector<Strategy> worker_deviants();

// Deviants only meaningful for the load-originating processor.
std::vector<Strategy> lo_deviants();

}  // namespace dlsbl::agents
