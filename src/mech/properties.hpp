// Numerical certificates for the mechanism-design properties.
//
//   * Definition 3.2 / Theorems 3.1, 5.2 — strategyproofness: an agent's
//     utility is maximized by bidding its true value, for any bids of the
//     others. check_strategyproofness() sweeps multiplicative bid
//     deviations and lets the deviator pick its best execution value.
//   * Definition 3.3 / Theorems 3.2, 5.3 — voluntary participation:
//     truthful agents never get negative utility.
#pragma once

#include <cstdint>
#include <vector>

#include "dlt/types.hpp"
#include "mech/dls_bl.hpp"
#include "util/rng.hpp"

namespace dlsbl::mech {

struct DeviationPoint {
    double bid_factor = 1.0;   // θ, with b_i = θ * w_i
    double best_utility = 0.0; // max over admissible execution values w̃_i
};

// Utility curve of agent `i` across bid factors, others bidding truthfully.
// For each deviated bid, the agent is allowed to pick the execution value
// w̃_i in [w_i, max(w_i, b_i)] that maximizes its utility (mechanism with
// verification: it can't run faster than its capacity, but may run slower,
// e.g. to mask an overbid).
std::vector<DeviationPoint> utility_vs_bid(dlt::NetworkKind kind, double z,
                                           const std::vector<double>& true_values,
                                           std::size_t i,
                                           const std::vector<double>& bid_factors,
                                           std::size_t exec_grid = 17);

struct StrategyproofnessReport {
    std::size_t instances = 0;
    std::size_t agent_sweeps = 0;
    std::size_t violations = 0;       // deviations strictly beating truthfulness
    double worst_gain = 0.0;          // max (deviant utility - truthful utility)
};

// Random instances: m ∈ [2, max_m], z and w log-uniform; every agent sweeps
// the given bid factors. A violation is a deviant utility exceeding the
// truthful utility by more than `tolerance`.
StrategyproofnessReport check_strategyproofness(dlt::NetworkKind kind,
                                                std::size_t instances, std::size_t max_m,
                                                util::Xoshiro256& rng,
                                                double tolerance = 1e-9);

struct VoluntaryParticipationReport {
    std::size_t instances = 0;
    std::size_t agents = 0;
    std::size_t violations = 0;  // truthful agents with utility < -tolerance
    double min_utility = 0.0;
};

VoluntaryParticipationReport check_voluntary_participation(dlt::NetworkKind kind,
                                                           std::size_t instances,
                                                           std::size_t max_m,
                                                           util::Xoshiro256& rng,
                                                           double tolerance = 1e-9);

// Draws a random instance: m processors, w_i ∈ [0.5, 8] log-uniform, and
// z log-uniform in [0.05, min(2, 0.9·min_i w_i)] so the instance satisfies
// dlt::full_participation_optimal() — the regime the paper's theorems
// assume. Used by both checkers and several benches.
dlt::ProblemInstance random_instance(dlt::NetworkKind kind, std::size_t m,
                                     util::Xoshiro256& rng);

}  // namespace dlsbl::mech
