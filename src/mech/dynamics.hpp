// Best-response dynamics: does a population of boundedly-rational agents
// *find* the truthful equilibrium?
//
// Strategyproofness (Theorem 5.2) says truth-telling is a dominant
// strategy, so best-response dynamics should converge to the truthful
// profile from any start — in fact in one round, since each agent's best
// response is independent of the others' bids. This module makes that
// testable: agents start from arbitrary bid factors and repeatedly play a
// (grid-quantized) best response against the current profile.
#pragma once

#include <vector>

#include "dlt/types.hpp"
#include "mech/dls_bl.hpp"

namespace dlsbl::mech {

struct BestResponseOptions {
    // Candidate bid factors an agent considers (relative to its true w).
    std::vector<double> factor_grid = {0.25, 0.4, 0.55, 0.7, 0.85, 1.0,
                                       1.2,  1.5, 2.0,  3.0, 5.0};
    // Execution-value choices per bid (fractions of the way from w to
    // max(w, b)).
    std::size_t exec_grid = 9;
    std::size_t max_rounds = 20;
};

// The factor in `options.factor_grid` maximizing agent i's utility given
// the others' current bids (ties resolved toward 1.0).
double best_response_factor(dlt::NetworkKind kind, double z,
                            const std::vector<double>& true_w,
                            const std::vector<double>& current_bids, std::size_t i,
                            const BestResponseOptions& options = {});

struct DynamicsResult {
    std::vector<std::vector<double>> factor_history;  // per round, per agent
    std::size_t rounds_to_converge = 0;               // 0 = started converged
    bool converged = false;
    bool truthful_fixed_point = false;  // final profile all factors == 1.0
};

// Runs simultaneous best-response dynamics from `initial_factors` until the
// profile stops changing or max_rounds is hit.
DynamicsResult run_best_response_dynamics(dlt::NetworkKind kind, double z,
                                          const std::vector<double>& true_w,
                                          std::vector<double> initial_factors,
                                          const BestResponseOptions& options = {});

}  // namespace dlsbl::mech
