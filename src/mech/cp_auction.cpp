#include "mech/cp_auction.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlsbl::mech {

CpAuctionOutcome run_cp_auction(double z, const std::vector<CpAgent>& agents) {
    if (agents.size() < 2) {
        throw std::invalid_argument("run_cp_auction: need at least two agents");
    }
    CpAuctionOutcome outcome;
    outcome.bids.reserve(agents.size());
    outcome.exec_values.reserve(agents.size());
    for (const auto& agent : agents) {
        outcome.bids.push_back(agent.bid_factor * agent.true_w);
        // Verification: the meter observes the true execution rate; agents
        // cannot run faster than their hardware.
        outcome.exec_values.push_back(
            std::max(agent.true_w, agent.exec_factor * agent.true_w));
    }
    const DlsBl mechanism(dlt::NetworkKind::kCP, z, outcome.bids);
    outcome.alpha = mechanism.allocation();
    outcome.breakdown = mechanism.payments(std::span<const double>(outcome.exec_values));
    outcome.makespan =
        mechanism.realized_makespan(std::span<const double>(outcome.exec_values));
    for (double q : outcome.breakdown.payment) outcome.user_paid += q;
    return outcome;
}

}  // namespace dlsbl::mech
