#include "mech/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dlsbl::mech {

double best_response_factor(dlt::NetworkKind kind, double z,
                            const std::vector<double>& true_w,
                            const std::vector<double>& current_bids, std::size_t i,
                            const BestResponseOptions& options) {
    if (true_w.size() != current_bids.size()) {
        throw std::invalid_argument("best_response_factor: size mismatch");
    }
    if (i >= true_w.size()) throw std::out_of_range("best_response_factor: bad index");

    double best_factor = 1.0;
    double best_utility = -std::numeric_limits<double>::infinity();
    for (double factor : options.factor_grid) {
        std::vector<double> bids = current_bids;
        bids[i] = factor * true_w[i];
        const DlsBl mechanism(kind, z, bids);
        // The agent may also pick its execution value in [w, max(w, b)].
        const double hi = std::max(true_w[i], bids[i]);
        double utility = -std::numeric_limits<double>::infinity();
        const std::size_t grid = std::max<std::size_t>(options.exec_grid, 2);
        for (std::size_t g = 0; g < grid; ++g) {
            const double frac = static_cast<double>(g) / static_cast<double>(grid - 1);
            utility = std::max(utility,
                               mechanism.utility_of(i, true_w[i] + frac * (hi - true_w[i])));
        }
        // Ties break toward truthfulness (factor 1.0), then toward the
        // earlier candidate for determinism.
        const bool better = utility > best_utility + 1e-12;
        const bool tie_prefers = std::abs(utility - best_utility) <= 1e-12 &&
                                 std::abs(factor - 1.0) < std::abs(best_factor - 1.0);
        if (better || tie_prefers) {
            best_utility = utility;
            best_factor = factor;
        }
    }
    return best_factor;
}

DynamicsResult run_best_response_dynamics(dlt::NetworkKind kind, double z,
                                          const std::vector<double>& true_w,
                                          std::vector<double> initial_factors,
                                          const BestResponseOptions& options) {
    if (initial_factors.size() != true_w.size()) {
        throw std::invalid_argument("run_best_response_dynamics: size mismatch");
    }
    DynamicsResult result;
    std::vector<double> factors = std::move(initial_factors);
    result.factor_history.push_back(factors);

    for (std::size_t round = 1; round <= options.max_rounds; ++round) {
        std::vector<double> bids(true_w.size());
        for (std::size_t i = 0; i < true_w.size(); ++i) bids[i] = factors[i] * true_w[i];

        std::vector<double> next(true_w.size());
        for (std::size_t i = 0; i < true_w.size(); ++i) {
            next[i] = best_response_factor(kind, z, true_w, bids, i, options);
        }
        result.factor_history.push_back(next);
        if (next == factors) {
            result.converged = true;
            result.rounds_to_converge = round - 1;
            break;
        }
        factors = std::move(next);
    }
    if (!result.converged && result.factor_history.size() >= 2 &&
        result.factor_history.back() ==
            result.factor_history[result.factor_history.size() - 2]) {
        result.converged = true;
    }
    const auto& final_profile = result.factor_history.back();
    result.truthful_fixed_point =
        std::all_of(final_profile.begin(), final_profile.end(),
                    // Factors are snapped to the literal 1.0 when an agent
                    // converges, so equality is exact.
                    // DLSBL_LINT_ALLOW(float-equality)
                    [](double f) { return f == 1.0; });
    return result;
}

}  // namespace dlsbl::mech
