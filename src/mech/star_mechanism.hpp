// Strategyproof scheduling on STAR networks — the paper's future work
// ("we are planning to investigate other network architectures"),
// implemented as the natural extension of DLS-BL.
//
// Setting: workers hang off the load origin over private links z_i (public,
// a property of the wire) and private compute speeds w_i (the reported
// type, as in DLS-BL). The mechanism:
//   * fixes the activation order by the public link speeds — fastest links
//     first, which is makespan-optimal regardless of the reported w
//     (dlt/star.hpp), so bids cannot game the ordering;
//   * allocates by the equal-finish closed form on the ordered system;
//   * pays Q_i = C_i + B_i with the same compensation-and-bonus structure,
//     B_i = T(α(b₋ᵢ), b₋ᵢ) − T(α(b), (b₋ᵢ, w̃_i)).
//
// Strategyproofness follows the same argument as DLS-BL: given the (bid-
// independent) order, α(b) minimizes the makespan for the reported types,
// so under-/over-reporting can only raise the realized makespan term of the
// bonus. tests/test_mech_star.cpp certifies this numerically.
#pragma once

#include <vector>

#include "dlt/star.hpp"
#include "mech/dls_bl.hpp"

namespace dlsbl::mech {

class StarMechanism {
 public:
    // links: public z_i per worker; bids: reported w_i. Requires >= 2
    // workers. The mechanism internally reorders by bandwidth; all inputs
    // and outputs stay in the caller's original indexing.
    StarMechanism(std::vector<double> links, std::vector<double> bids);

    [[nodiscard]] const dlt::LoadAllocation& allocation() const noexcept {
        return alpha_;
    }
    [[nodiscard]] double bid_makespan() const noexcept { return bid_makespan_; }

    [[nodiscard]] PaymentBreakdown payments(std::span<const double> exec_values) const;
    [[nodiscard]] double utility_of(std::size_t i, double exec_value) const;
    [[nodiscard]] double exclusion_makespan(std::size_t i) const;

 private:
    // Makespan with allocation α(b) (in original indexing) and processor i
    // executing at `exec`, everyone else at its bid.
    [[nodiscard]] double realized_makespan_with(std::size_t i, double exec) const;

    std::vector<double> links_;
    std::vector<double> bids_;
    std::vector<std::size_t> order_;        // activation order (position -> original)
    std::vector<std::size_t> position_of_;  // original -> position
    dlt::LoadAllocation alpha_;             // original indexing
    double bid_makespan_ = 0.0;
    mutable std::vector<double> exclusion_cache_;
};

}  // namespace dlsbl::mech
