#include "mech/dls_bl.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dlsbl::mech {

DlsBl::DlsBl(dlt::NetworkKind kind, double z, std::vector<double> bids) {
    if (bids.size() < 2) {
        throw std::invalid_argument("DlsBl: mechanism needs at least two processors");
    }
    instance_.kind = kind;
    instance_.z = z;
    instance_.w = std::move(bids);
    instance_.validate();
    alpha_ = dlt::optimal_allocation(instance_);
    exclusion_cache_.assign(instance_.processor_count(),
                            std::numeric_limits<double>::quiet_NaN());
}

double DlsBl::bid_makespan() const { return dlt::makespan(instance_, alpha_); }

double DlsBl::realized_makespan(std::span<const double> exec_values) const {
    if (exec_values.size() != instance_.processor_count()) {
        throw std::invalid_argument("DlsBl: execution vector size mismatch");
    }
    return dlt::makespan_generic<double>(instance_.kind, std::span<const double>(alpha_),
                                         exec_values, instance_.z);
}

double DlsBl::exclusion_makespan(std::size_t i) const {
    if (i >= instance_.processor_count()) throw std::out_of_range("DlsBl: bad index");
    if (std::isnan(exclusion_cache_[i])) {
        exclusion_cache_[i] = dlt::leave_one_out_makespan(instance_, i);
    }
    return exclusion_cache_[i];
}

double DlsBl::bonus_of(std::size_t i, double exec_value) const {
    // T(α(b), (b_-i, w̃_i)): the bid-derived allocation evaluated with P_i
    // at its observed speed and everyone else at their bid.
    std::vector<double> mixed = instance_.w;
    mixed[i] = exec_value;
    const double realized = dlt::makespan_generic<double>(
        instance_.kind, std::span<const double>(alpha_), std::span<const double>(mixed),
        instance_.z);
    return exclusion_makespan(i) - realized;
}

double DlsBl::utility_of(std::size_t i, double exec_value) const {
    // U_i = Q_i + V_i = (C_i + B_i) - α_i w̃_i = B_i.
    return bonus_of(i, exec_value);
}

PaymentBreakdown DlsBl::payments(std::span<const double> exec_values) const {
    const std::size_t m = instance_.processor_count();
    if (exec_values.size() != m) {
        throw std::invalid_argument("DlsBl: execution vector size mismatch");
    }
    PaymentBreakdown out;
    out.compensation.resize(m);
    out.bonus.resize(m);
    out.payment.resize(m);
    out.utility.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        out.compensation[i] = alpha_[i] * exec_values[i];
        out.bonus[i] = bonus_of(i, exec_values[i]);
        out.payment[i] = out.compensation[i] + out.bonus[i];
        out.utility[i] = out.payment[i] - alpha_[i] * exec_values[i];
    }
    return out;
}

}  // namespace dlsbl::mech
