// The DLS-BL mechanism (Grosu & Carroll [9], restated in §3 of the paper):
// a Compensation-and-Bonus mechanism with verification for divisible-load
// scheduling on bus networks.
//
//   * Each processor P_i has true unit-processing time t_i = w_i (private),
//     reports a bid b_i, and is later observed executing at w̃_i >= w_i.
//   * Output function: α(b) — the optimal BUS-LINEAR allocation computed
//     from the bids (dlt/closed_form.hpp).
//   * Valuation: V_i = -α_i w̃_i (linear cost model, §2).
//   * Payment:   Q_i(b, w̃) = C_i + B_i with
//       C_i = α_i w̃_i                                  (compensation)
//       B_i = T(α(b_-i), b_-i) - T(α(b), (b_-i, w̃_i))  (bonus)
//     where T(α(b_-i), b_-i) is the optimal makespan of the system without
//     P_i and the second term is the realized makespan: allocation from the
//     bids, processor i executing at w̃_i, everyone else at their bid.
//   * Utility: U_i = Q_i + V_i = B_i (compensation cancels the valuation).
//
// DLS-BL-NCP (protocol/) uses these exact allocation and payment functions;
// the paper's Theorems 5.2 and 5.3 inherit from Theorems 3.1 and 3.2 via
// that identity, which tests/test_protocol.cpp checks numerically.
#pragma once

#include <span>
#include <vector>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"
#include "dlt/sequencing.hpp"

namespace dlsbl::mech {

struct PaymentBreakdown {
    std::vector<double> compensation;  // C_i = α_i w̃_i
    std::vector<double> bonus;         // B_i
    std::vector<double> payment;       // Q_i = C_i + B_i
    std::vector<double> utility;       // U_i = Q_i - α_i w̃_i  (== B_i)
};

class DlsBl {
 public:
    // kind/z describe the bus system; bids become the w-vector handed to the
    // BUS-LINEAR allocation algorithm. Requires >= 2 processors (the bonus
    // compares against the leave-one-out system).
    DlsBl(dlt::NetworkKind kind, double z, std::vector<double> bids);

    [[nodiscard]] const dlt::LoadAllocation& allocation() const noexcept { return alpha_; }
    [[nodiscard]] const dlt::ProblemInstance& bid_instance() const noexcept {
        return instance_;
    }

    // Makespan if every processor executed exactly as bid: T(α(b), b).
    [[nodiscard]] double bid_makespan() const;

    // Realized makespan with observed execution values (w̃): T(α(b), w̃).
    [[nodiscard]] double realized_makespan(std::span<const double> exec_values) const;

    // Payments given the observed per-unit execution times w̃ (same length
    // as the bid vector).
    [[nodiscard]] PaymentBreakdown payments(std::span<const double> exec_values) const;

    // Single-agent views (used by property checkers and benches).
    [[nodiscard]] double bonus_of(std::size_t i, double exec_value) const;
    [[nodiscard]] double utility_of(std::size_t i, double exec_value) const;

    // Optimal makespan of the system without processor i: T(α(b_-i), b_-i).
    [[nodiscard]] double exclusion_makespan(std::size_t i) const;

 private:
    dlt::ProblemInstance instance_;    // kind, z, w = bids
    dlt::LoadAllocation alpha_;
    mutable std::vector<double> exclusion_cache_;  // lazily computed, NaN = missing
};

}  // namespace dlsbl::mech
