#include "mech/star_mechanism.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dlsbl::mech {

namespace {

dlt::StarInstance ordered_instance(const std::vector<double>& links,
                                   const std::vector<double>& speeds,
                                   const std::vector<std::size_t>& order) {
    dlt::StarInstance instance;
    instance.z.reserve(order.size());
    instance.w.reserve(order.size());
    for (std::size_t original : order) {
        instance.z.push_back(links[original]);
        instance.w.push_back(speeds[original]);
    }
    return instance;
}

}  // namespace

StarMechanism::StarMechanism(std::vector<double> links, std::vector<double> bids)
    : links_(std::move(links)), bids_(std::move(bids)) {
    if (bids_.size() < 2) {
        throw std::invalid_argument("StarMechanism: need at least two workers");
    }
    if (links_.size() != bids_.size()) {
        throw std::invalid_argument("StarMechanism: links/bids size mismatch");
    }
    dlt::StarInstance raw{links_, bids_};
    raw.validate();

    order_ = dlt::star_bandwidth_order(raw);
    position_of_.resize(order_.size());
    for (std::size_t pos = 0; pos < order_.size(); ++pos) {
        position_of_[order_[pos]] = pos;
    }

    const auto instance = ordered_instance(links_, bids_, order_);
    const auto ordered_alpha = dlt::star_optimal_allocation(instance);
    alpha_.resize(bids_.size());
    for (std::size_t pos = 0; pos < order_.size(); ++pos) {
        alpha_[order_[pos]] = ordered_alpha[pos];
    }
    bid_makespan_ = dlt::star_makespan(instance, ordered_alpha);
    exclusion_cache_.assign(bids_.size(), std::numeric_limits<double>::quiet_NaN());
}

double StarMechanism::realized_makespan_with(std::size_t i, double exec) const {
    std::vector<double> speeds = bids_;
    speeds[i] = exec;
    const auto instance = ordered_instance(links_, speeds, order_);
    dlt::LoadAllocation ordered_alpha(alpha_.size());
    for (std::size_t pos = 0; pos < order_.size(); ++pos) {
        ordered_alpha[pos] = alpha_[order_[pos]];
    }
    return dlt::star_makespan(instance, ordered_alpha);
}

double StarMechanism::exclusion_makespan(std::size_t i) const {
    if (i >= bids_.size()) throw std::out_of_range("StarMechanism: bad index");
    if (std::isnan(exclusion_cache_[i])) {
        std::vector<double> links;
        std::vector<double> speeds;
        for (std::size_t j = 0; j < bids_.size(); ++j) {
            if (j == i) continue;
            links.push_back(links_[j]);
            speeds.push_back(bids_[j]);
        }
        dlt::StarInstance reduced{std::move(links), std::move(speeds)};
        const auto order = dlt::star_bandwidth_order(reduced);
        exclusion_cache_[i] =
            dlt::star_optimal_makespan(dlt::star_reorder(reduced, order));
    }
    return exclusion_cache_[i];
}

double StarMechanism::utility_of(std::size_t i, double exec_value) const {
    // U_i = Q_i + V_i = B_i, as in DLS-BL.
    return exclusion_makespan(i) - realized_makespan_with(i, exec_value);
}

PaymentBreakdown StarMechanism::payments(std::span<const double> exec_values) const {
    if (exec_values.size() != bids_.size()) {
        throw std::invalid_argument("StarMechanism: execution vector size mismatch");
    }
    PaymentBreakdown out;
    const std::size_t m = bids_.size();
    out.compensation.resize(m);
    out.bonus.resize(m);
    out.payment.resize(m);
    out.utility.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        out.compensation[i] = alpha_[i] * exec_values[i];
        out.bonus[i] = exclusion_makespan(i) - realized_makespan_with(i, exec_values[i]);
        out.payment[i] = out.compensation[i] + out.bonus[i];
        out.utility[i] = out.bonus[i];
    }
    return out;
}

}  // namespace dlsbl::mech
