// Centralized DLS-BL execution for the CP system (the paper's predecessor
// mechanism, [9]): a *trusted* control processor P_0 collects bids,
// computes the BUS-LINEAR-CP allocation, distributes the load, observes
// execution, and pays Q = C + B.
//
// This runner complements protocol/runner.hpp (the distributed,
// referee-arbitrated NCP protocol): it needs no signatures, no monitoring
// and no fines, because P_0 is assumed obedient — exactly the assumption
// DLS-BL-NCP removes. Tests use it to check that the two runners produce
// identical economics when fed the same reports.
#pragma once

#include <vector>

#include "mech/dls_bl.hpp"

namespace dlsbl::mech {

struct CpAgent {
    double true_w = 1.0;     // private type
    double bid_factor = 1.0; // report b = factor * w
    double exec_factor = 1.0; // run at w̃ = max(w, factor * w)
};

struct CpAuctionOutcome {
    std::vector<double> bids;
    std::vector<double> exec_values;   // observed w̃
    dlt::LoadAllocation alpha;
    PaymentBreakdown breakdown;
    double makespan = 0.0;             // realized: T(α(b), w̃)
    double user_paid = 0.0;            // Σ Q_i

    // Agent utility U_i = Q_i - α_i w̃_i (the agent's real cost is its time).
    [[nodiscard]] double utility(std::size_t i) const {
        return breakdown.payment[i] - alpha[i] * exec_values[i];
    }
};

// Runs one CP auction: collects reports, allocates, "executes" (analytic
// timing — the CP system needs no distributed simulation), pays.
CpAuctionOutcome run_cp_auction(double z, const std::vector<CpAgent>& agents);

}  // namespace dlsbl::mech
