#include "mech/properties.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dlsbl::mech {

dlt::ProblemInstance random_instance(dlt::NetworkKind kind, std::size_t m,
                                     util::Xoshiro256& rng) {
    dlt::ProblemInstance instance;
    instance.kind = kind;
    instance.w.resize(m);
    double min_w = std::numeric_limits<double>::infinity();
    for (double& wi : instance.w) {
        wi = std::exp(rng.uniform(std::log(0.5), std::log(8.0)));
        min_w = std::min(min_w, wi);
    }
    // Stay inside the full-participation regime (dlt::full_participation_
    // optimal): communication strictly cheaper than any processor's compute.
    const double z_hi = std::min(2.0, 0.9 * min_w);
    instance.z = std::exp(rng.uniform(std::log(0.05), std::log(z_hi)));
    return instance;
}

std::vector<DeviationPoint> utility_vs_bid(dlt::NetworkKind kind, double z,
                                           const std::vector<double>& true_values,
                                           std::size_t i,
                                           const std::vector<double>& bid_factors,
                                           std::size_t exec_grid) {
    std::vector<DeviationPoint> curve;
    curve.reserve(bid_factors.size());
    const double w_i = true_values[i];
    for (double factor : bid_factors) {
        std::vector<double> bids = true_values;
        bids[i] = factor * w_i;
        const DlsBl mechanism(kind, z, bids);
        // Mechanism with verification: w̃_i >= w_i. Executing slower than
        // max(w_i, b_i) never helps, so the grid covers [w_i, max(w_i, b_i)].
        const double hi = std::max(w_i, bids[i]);
        double best = -std::numeric_limits<double>::infinity();
        for (std::size_t g = 0; g < std::max<std::size_t>(exec_grid, 2); ++g) {
            const double frac =
                static_cast<double>(g) / static_cast<double>(exec_grid - 1);
            const double exec = w_i + frac * (hi - w_i);
            best = std::max(best, mechanism.utility_of(i, exec));
        }
        curve.push_back({factor, best});
    }
    return curve;
}

StrategyproofnessReport check_strategyproofness(dlt::NetworkKind kind,
                                                std::size_t instances, std::size_t max_m,
                                                util::Xoshiro256& rng, double tolerance) {
    static const std::vector<double> kFactors = {0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.05,
                                                 1.1, 1.25, 1.5, 2.0, 3.0, 5.0};
    StrategyproofnessReport report;
    for (std::size_t trial = 0; trial < instances; ++trial) {
        const std::size_t m = static_cast<std::size_t>(rng.uniform_int(2, max_m));
        const dlt::ProblemInstance instance = random_instance(kind, m, rng);
        for (std::size_t i = 0; i < m; ++i) {
            const DlsBl truthful(kind, instance.z, instance.w);
            const double truthful_utility = truthful.utility_of(i, instance.w[i]);
            const auto curve =
                utility_vs_bid(kind, instance.z, instance.w, i, kFactors);
            ++report.agent_sweeps;
            for (const auto& point : curve) {
                const double gain = point.best_utility - truthful_utility;
                if (gain > tolerance) {
                    ++report.violations;
                    report.worst_gain = std::max(report.worst_gain, gain);
                }
            }
        }
        ++report.instances;
    }
    return report;
}

VoluntaryParticipationReport check_voluntary_participation(dlt::NetworkKind kind,
                                                           std::size_t instances,
                                                           std::size_t max_m,
                                                           util::Xoshiro256& rng,
                                                           double tolerance) {
    VoluntaryParticipationReport report;
    report.min_utility = std::numeric_limits<double>::infinity();
    for (std::size_t trial = 0; trial < instances; ++trial) {
        const std::size_t m = static_cast<std::size_t>(rng.uniform_int(2, max_m));
        const dlt::ProblemInstance instance = random_instance(kind, m, rng);
        const DlsBl mechanism(kind, instance.z, instance.w);
        const auto breakdown = mechanism.payments(std::span<const double>(instance.w));
        for (double u : breakdown.utility) {
            ++report.agents;
            report.min_utility = std::min(report.min_utility, u);
            if (u < -tolerance) ++report.violations;
        }
        ++report.instances;
    }
    if (report.agents == 0) report.min_utility = 0.0;
    return report;
}

}  // namespace dlsbl::mech
