// Multiround (multi-installment) scheduling extension.
#include "dlt/multiround.hpp"

#include <gtest/gtest.h>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"

namespace dlsbl::dlt {
namespace {

ProblemInstance make(NetworkKind kind, double z, std::vector<double> w) {
    return ProblemInstance{kind, z, std::move(w)};
}

TEST(Multiround, SingleRoundMatchesClosedForm) {
    // R = 1 must reproduce the eqs (1)-(3) finishing-time model exactly.
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const auto instance = make(kind, 0.4, {1.0, 2.0, 1.4, 0.9});
        const auto alpha = optimal_allocation(instance);
        EXPECT_NEAR(multiround_makespan(instance, alpha, 1),
                    makespan(instance, alpha), 1e-12)
            << to_string(kind);
    }
}

TEST(Multiround, MoreRoundsNeverHurtMuchAndHelpWithBigZ) {
    // With substantial communication cost, even 2 rounds beat 1.
    const auto instance = make(NetworkKind::kCP, 0.6, {1.0, 1.0, 1.0, 1.0});
    const double one = multiround_makespan(instance, 1);
    const double two = multiround_makespan(instance, 2);
    const double eight = multiround_makespan(instance, 8);
    EXPECT_LT(two, one);
    EXPECT_LT(eight, two);
}

TEST(Multiround, DiminishingReturns) {
    const auto instance = make(NetworkKind::kCP, 0.5, {1.0, 1.5, 2.0});
    const auto study = multiround_study(instance, 32);
    ASSERT_EQ(study.makespans.size(), 32u);
    const double gain_first = study.makespans[0] - study.makespans[1];
    const double gain_late = study.makespans[16] - study.makespans[31];
    EXPECT_GT(gain_first, gain_late);
    EXPECT_LE(study.best_makespan, study.single_round_makespan);
}

TEST(Multiround, ZeroCommMakesRoundsIrrelevant) {
    const auto instance = make(NetworkKind::kCP, 0.0, {1.0, 2.0, 4.0});
    const double one = multiround_makespan(instance, 1);
    for (std::size_t r : {2u, 5u, 16u}) {
        EXPECT_NEAR(multiround_makespan(instance, r), one, 1e-12) << r;
    }
}

TEST(Multiround, NfeLoStillWaitsForBus) {
    // The front-end-less LO cannot benefit from chunking its own share.
    const auto instance = make(NetworkKind::kNcpNFE, 0.4, {1.0, 1.0, 2.0});
    const auto alpha = optimal_allocation(instance);
    const double total_comm = instance.z * (alpha[0] + alpha[1]);
    for (std::size_t r : {1u, 4u}) {
        const double t = multiround_makespan(instance, alpha, r);
        EXPECT_GE(t, total_comm + alpha[2] * instance.w[2] - 1e-12) << r;
    }
}

TEST(Multiround, FeLoUnaffectedByRounds) {
    // The FE LO's own completion time is α_1 w_1 regardless of R; rounds
    // only help the workers.
    const auto instance = make(NetworkKind::kNcpFE, 0.5, {1.0, 1.0});
    const auto alpha = optimal_allocation(instance);
    // With m=2 the single worker receives everything in order; chunking
    // lets it start earlier.
    const double r1 = multiround_makespan(instance, alpha, 1);
    const double r4 = multiround_makespan(instance, alpha, 4);
    EXPECT_LE(r4, r1 + 1e-12);
}

TEST(Multiround, GeometricRatioOneIsUniform) {
    const auto instance = make(NetworkKind::kCP, 0.4, {1.0, 2.0, 1.5});
    const auto alpha = optimal_allocation(instance);
    for (std::size_t r : {1u, 4u, 9u}) {
        EXPECT_NEAR(multiround_geometric_makespan(instance, alpha, r, 1.0),
                    multiround_makespan(instance, alpha, r), 1e-12)
            << r;
    }
}

TEST(Multiround, TunedGeometricBeatsUniform) {
    // With no per-round overhead, *shrinking* rounds win: a small final
    // chunk shortens the compute tail after the last transfer (the growing
    // rounds of UMR-style schemes pay off only when each round carries a
    // fixed latency overhead, which this model deliberately omits).
    const auto instance = make(NetworkKind::kCP, 0.5, {1.0, 1.0, 1.0, 1.0});
    const auto tuning = multiround_tune_ratio(instance, 8);
    EXPECT_LT(tuning.best_makespan, tuning.uniform_makespan - 1e-9);
    EXPECT_LT(tuning.best_ratio, 1.0);
}

TEST(Multiround, GeometricValidation) {
    const auto instance = make(NetworkKind::kCP, 0.4, {1.0, 2.0});
    const auto alpha = optimal_allocation(instance);
    EXPECT_THROW(multiround_geometric_makespan(instance, alpha, 0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(multiround_geometric_makespan(instance, alpha, 4, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(multiround_geometric_makespan(instance, alpha, 4, -1.0),
                 std::invalid_argument);
}

TEST(Multiround, Validation) {
    const auto instance = make(NetworkKind::kCP, 0.4, {1.0, 2.0});
    EXPECT_THROW(multiround_makespan(instance, {1.0}, 2), std::invalid_argument);
    EXPECT_THROW(multiround_makespan(instance, 0), std::invalid_argument);
    EXPECT_THROW(multiround_study(instance, 0), std::invalid_argument);
}

TEST(Multiround, GainIsPeakShapedInCommunicationCost) {
    // The relative multiround win grows from z = 0 (nothing to overlap) to a
    // peak at moderate z, then shrinks again once the bus itself becomes the
    // bottleneck (total transfer time is irreducible by chunking).
    auto gain_at = [&](double z) {
        const auto instance = make(NetworkKind::kCP, z, {1.0, 1.0, 1.0, 1.0});
        const double one = multiround_makespan(instance, 1);
        const double best = multiround_study(instance, 16).best_makespan;
        return (one - best) / one;
    };
    const double low = gain_at(0.05);
    const double mid = gain_at(0.3);
    const double high = gain_at(2.0);
    EXPECT_GT(low, 0.0);
    EXPECT_GT(mid, low);
    EXPECT_LT(high, mid);
}

}  // namespace
}  // namespace dlsbl::dlt
