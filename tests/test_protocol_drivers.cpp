// Fixed-seed equivalence between the two protocol drivers.
//
// The sans-I/O cores (NodeCore / RefereeCore) must behave identically no
// matter which driver hosts them: the discrete-event sim adapter and the
// in-process BusDriver have to produce byte-identical artifacts — outcome,
// fines ledger, JSONL event log, rendered trace, catapult export, per-run
// metrics — for a fixed config, across honest and cheating agent zoos, and
// at any executor --jobs value.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "agents/zoo.hpp"
#include "exec/executor.hpp"
#include "obs/catapult.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "protocol/detail/run_internals.hpp"
#include "protocol/drivers/deadline_wheel.hpp"
#include "protocol/drivers/spsc_ring.hpp"
#include "protocol/runner.hpp"

namespace dlsbl::protocol {
namespace {

ProtocolConfig base_config(dlt::NetworkKind kind) {
    ProtocolConfig config;
    config.kind = kind;
    config.z = 0.25;
    config.true_w = {1.0, 2.0, 1.5, 0.8};
    config.block_count = 1200;
    config.seed = 42;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    config.strategies.assign(config.true_w.size(), agents::truthful());
    return config;
}

// Deterministic rendering of everything an outcome carries; two runs agree
// iff their renderings agree byte-for-byte.
std::string render_outcome(const ProtocolOutcome& outcome) {
    std::ostringstream out;
    out.precision(17);
    out << "terminated=" << outcome.terminated_early
        << " reason=" << outcome.termination_reason
        << " ended_in=" << to_string(outcome.ended_in)
        << " fine=" << outcome.fine_amount << " makespan=" << outcome.makespan
        << " user_paid=" << outcome.user_paid
        << " msgs=" << outcome.control_messages
        << " bytes=" << outcome.control_bytes << "\n";
    for (const auto& [phase, bytes] : outcome.bytes_by_phase) {
        out << "phase " << phase << " bytes=" << bytes << "\n";
    }
    for (const auto& p : outcome.processors) {
        out << p.name << " w=" << p.true_w << " bid=" << p.bid
            << " rate=" << p.exec_rate << " alpha=" << p.alpha
            << " assigned=" << p.blocks_assigned
            << " received=" << p.blocks_received << " phi=" << p.phi
            << " commenced=" << p.commenced_work << " comp=" << p.compensation
            << " bonus=" << p.bonus << " payment=" << p.payment
            << " fines=" << p.fines << " rewards=" << p.rewards
            << " fined=" << p.fined << " cost=" << p.work_cost << "\n";
    }
    return out.str();
}

std::string render_ledger(const Ledger& ledger) {
    std::ostringstream out;
    out.precision(17);
    for (const auto& entry : ledger.history()) {
        out << entry.from << " -> " << entry.to << " " << entry.amount << " ("
            << entry.memo << ")\n";
    }
    return out.str();
}

// Every byte-identity artifact from one run under the requested driver.
struct RunCapture {
    std::string outcome;
    std::string ledger;
    std::string jsonl;
    std::string trace;
    std::string catapult;
    std::string run_metrics;
};

RunCapture capture(const ProtocolConfig& config, DriverKind kind) {
    auto& log = obs::EventLog::instance();
    log.reset();
    std::ostringstream jsonl;
    log.add_sink(std::make_shared<obs::JsonlSink>(jsonl));
    log.set_level(util::LogLevel::Debug);

    RunCapture capture;
    const auto outcome =
        run_protocol(RunRequest{config, kind}, [&](const RunInternals& internals) {
            capture.ledger = render_ledger(internals.context.ledger());
            capture.trace = internals.trace().render();
            capture.catapult = obs::catapult_from_trace(internals.trace());
            capture.run_metrics = internals.context.metrics_registry().prometheus_text();
        });
    log.flush();
    log.reset();
    capture.outcome = render_outcome(outcome);
    capture.jsonl = jsonl.str();
    return capture;
}

void expect_equivalent(const ProtocolConfig& config, const std::string& label) {
    const RunCapture sim = capture(config, DriverKind::kSim);
    const RunCapture bus = capture(config, DriverKind::kBus);
    EXPECT_FALSE(sim.outcome.empty()) << label;
    EXPECT_FALSE(sim.trace.empty()) << label;
    EXPECT_FALSE(sim.jsonl.empty()) << label;
    EXPECT_EQ(sim.outcome, bus.outcome) << label;
    EXPECT_EQ(sim.ledger, bus.ledger) << label;
    EXPECT_EQ(sim.jsonl, bus.jsonl) << label;
    EXPECT_EQ(sim.trace, bus.trace) << label;
    EXPECT_EQ(sim.catapult, bus.catapult) << label;
    EXPECT_EQ(sim.run_metrics, bus.run_metrics) << label;
}

TEST(DriverEquivalence, HonestRunsMatchByteForByte) {
    for (const auto kind : {dlt::NetworkKind::kNcpFE, dlt::NetworkKind::kNcpNFE}) {
        expect_equivalent(base_config(kind), dlt::to_string(kind));
    }
}

TEST(DriverEquivalence, BandwidthChargedControlPlaneMatches) {
    auto config = base_config(dlt::NetworkKind::kNcpFE);
    config.control_latency = 0.002;
    config.control_seconds_per_byte = 1e-5;
    expect_equivalent(config, "bandwidth-charged");
}

TEST(DriverEquivalence, WorkerDeviantZooMatches) {
    for (const auto kind : {dlt::NetworkKind::kNcpFE, dlt::NetworkKind::kNcpNFE}) {
        const auto deviants = agents::worker_deviants();
        for (std::size_t i = 0; i < deviants.size(); ++i) {
            auto config = base_config(kind);
            config.strategies[2] = deviants[i];
            expect_equivalent(config, std::string(dlt::to_string(kind)) +
                                          " worker_deviant#" + std::to_string(i));
        }
    }
}

TEST(DriverEquivalence, LoDeviantZooMatches) {
    const auto deviants = agents::lo_deviants();
    for (std::size_t i = 0; i < deviants.size(); ++i) {
        auto config = base_config(dlt::NetworkKind::kNcpFE);
        config.strategies[0] = deviants[i];
        expect_equivalent(config, "lo_deviant#" + std::to_string(i));
    }
}

TEST(DriverEquivalence, SeedsChangeArtifactsConsistently) {
    // Different seed -> different signed bytes, but sim and bus must track
    // each other exactly for every seed.
    for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
        auto config = base_config(dlt::NetworkKind::kNcpNFE);
        config.seed = seed;
        expect_equivalent(config, "seed=" + std::to_string(seed));
    }
}

// The BusDriver must be jobs-invariant under the run executor exactly like
// the sim driver: merged batch artifacts are byte-identical at any pool
// width.
TEST(DriverEquivalence, BusDriverJobsInvariantUnderExecutor) {
    auto run_batch = [](std::size_t jobs) {
        obs::EventLog::instance().reset();
        obs::MetricsRegistry::global().clear();
        std::ostringstream jsonl;
        auto& log = obs::EventLog::instance();
        log.add_sink(std::make_shared<obs::JsonlSink>(jsonl));
        log.set_level(util::LogLevel::Debug);

        exec::RunExecutor pool({.jobs = jobs, .root_seed = 0xD15Bull});
        const auto outcomes = pool.map(6, [&](exec::RunSlot& slot) {
            auto config = base_config(slot.index() % 2 == 0
                                          ? dlt::NetworkKind::kNcpFE
                                          : dlt::NetworkKind::kNcpNFE);
            config.block_count = 240;
            config.seed = slot.seed();
            return run_protocol(RunRequest{config, DriverKind::kBus});
        });
        log.flush();
        log.reset();
        std::string rendered = jsonl.str();
        rendered += obs::MetricsRegistry::global().prometheus_text();
        for (const auto& outcome : outcomes) rendered += render_outcome(outcome);
        obs::MetricsRegistry::global().clear();
        return rendered;
    };
    const std::string one = run_batch(1);
    const std::string two = run_batch(2);
    const std::string eight = run_batch(8);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

TEST(RunnerApi, DriverKindNamesAreStable) {
    EXPECT_STREQ(to_string(DriverKind::kSim), "sim");
    EXPECT_STREQ(to_string(DriverKind::kBus), "bus");
}

// ---- BusDriver building blocks ---------------------------------------------

TEST(SpscRing, PushPopFifoAndCapacity) {
    SpscRing<int, 4> ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.pop().has_value());
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
    EXPECT_FALSE(ring.push(99));  // full
    EXPECT_EQ(ring.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        const auto value = ring.pop();
        ASSERT_TRUE(value.has_value());
        EXPECT_EQ(*value, i);
    }
    EXPECT_TRUE(ring.empty());
    // Wrap-around keeps FIFO order.
    for (int round = 0; round < 10; ++round) {
        EXPECT_TRUE(ring.push(round));
        EXPECT_EQ(ring.pop().value(), round);
    }
}

TEST(DeadlineWheel, PopsInTimeThenSeqOrder) {
    DeadlineWheel wheel;
    std::vector<int> order;
    // Same bucket, out-of-order insertion; ties broken by seq.
    wheel.schedule(0.20, 3, [&] { order.push_back(3); });
    wheel.schedule(0.10, 1, [&] { order.push_back(1); });
    wheel.schedule(0.10, 2, [&] { order.push_back(2); });
    wheel.schedule(5.00, 0, [&] { order.push_back(4); });  // later bucket
    while (!wheel.empty()) wheel.pop_earliest().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(DeadlineWheel, BucketBoundaryKeepsGlobalOrder) {
    DeadlineWheel wheel(0.25);
    std::vector<int> order;
    wheel.schedule(0.2499999, 2, [&] { order.push_back(1); });
    wheel.schedule(0.25, 1, [&] { order.push_back(2); });  // next bucket
    wheel.schedule(0.75, 3, [&] { order.push_back(3); });
    while (!wheel.empty()) wheel.pop_earliest().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace dlsbl::protocol
