// Randomized, parameterized end-to-end sweeps: the protocol's invariants
// must hold across network kinds, system sizes, seeds, latencies and
// signature schemes — not just on the hand-picked fixtures.
#include <gtest/gtest.h>

#include <tuple>

#include "agents/zoo.hpp"
#include "mech/properties.hpp"
#include "protocol/detail/run_internals.hpp"
#include "protocol/runner.hpp"

namespace dlsbl::protocol {
namespace {

ProtocolConfig random_config(dlt::NetworkKind kind, std::size_t m, std::uint64_t seed) {
    util::Xoshiro256 rng{seed};
    const auto instance = mech::random_instance(kind, m, rng);
    ProtocolConfig config;
    config.kind = kind;
    config.z = instance.z;
    config.true_w = instance.w;
    config.block_count = 300 * m;  // keeps block-rounding noise ~1/300 per processor
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    config.seed = seed;
    return config;
}

class HonestSweep
    : public ::testing::TestWithParam<std::tuple<dlt::NetworkKind, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    KindsSizesSeeds, HonestSweep,
    ::testing::Combine(::testing::Values(dlt::NetworkKind::kNcpFE,
                                         dlt::NetworkKind::kNcpNFE),
                       ::testing::Values(2, 3, 5, 9, 14), ::testing::Values(1, 2, 3)));

TEST_P(HonestSweep, InvariantsHold) {
    const auto [kind, m, seed] = GetParam();
    const auto config = random_config(kind, static_cast<std::size_t>(m),
                                      static_cast<std::uint64_t>(seed) * 7919);
    double ledger_total = 1.0;
    const auto outcome = run_protocol(config, [&](const RunInternals& internals) {
        ledger_total = internals.context.ledger().total();
        EXPECT_TRUE(internals.referee.learned_bids().empty());
    });

    // 1. Honest runs settle without fines.
    EXPECT_FALSE(outcome.terminated_early) << outcome.termination_reason;
    EXPECT_EQ(outcome.fined_count(), 0u);
    // 2. Money is conserved.
    EXPECT_NEAR(ledger_total, 0.0, 1e-9);
    // 3. All load is assigned and processed.
    std::size_t blocks = 0;
    double alpha_sum = 0.0;
    for (const auto& p : outcome.processors) {
        blocks += p.blocks_assigned;
        alpha_sum += p.alpha;
        EXPECT_TRUE(p.commenced_work);
        // 4. Voluntary participation (block-rounding tolerance).
        EXPECT_GE(p.utility(), -2e-3) << p.name;
    }
    EXPECT_EQ(blocks, config.block_count);
    EXPECT_NEAR(alpha_sum, 1.0, 1e-9);
    // 5. Happy-path message count is exactly 2m + 2.
    EXPECT_EQ(outcome.control_messages, 2 * config.true_w.size() + 2);
    // 6. The simulated makespan matches the analytic optimum.
    dlt::ProblemInstance instance{config.kind, config.z, config.true_w};
    const double analytic = dlt::optimal_makespan(instance);
    EXPECT_NEAR(outcome.makespan, analytic, 2e-2 * analytic);
}

class DeviantSweep
    : public ::testing::TestWithParam<std::tuple<dlt::NetworkKind, int>> {};

INSTANTIATE_TEST_SUITE_P(KindsSeeds, DeviantSweep,
                         ::testing::Combine(::testing::Values(dlt::NetworkKind::kNcpFE,
                                                              dlt::NetworkKind::kNcpNFE),
                                            ::testing::Values(11, 12, 13)));

TEST_P(DeviantSweep, EveryDeviantCaughtOnRandomInstances) {
    const auto [kind, seed] = GetParam();
    const auto base = random_config(kind, 5, static_cast<std::uint64_t>(seed) * 104729);
    const std::size_t lo = dlt::load_origin_index(kind, 5);
    const std::size_t worker = (lo == 0) ? 3 : 1;

    for (const auto& strategy : agents::worker_deviants()) {
        auto config = base;
        config.strategies.assign(5, agents::truthful());
        config.strategies[worker] = strategy;
        const auto outcome = run_protocol(config);
        EXPECT_TRUE(outcome.processors[worker].fined) << strategy.name;
        EXPECT_EQ(outcome.fined_count(), 1u) << strategy.name;
    }
    for (const auto& strategy : agents::lo_deviants()) {
        auto config = base;
        config.strategies.assign(5, agents::truthful());
        config.strategies[lo] = strategy;
        const auto outcome = run_protocol(config);
        EXPECT_TRUE(outcome.processors[lo].fined) << strategy.name;
    }
}

class LatencySweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Latencies, LatencySweep,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05));

TEST_P(LatencySweep, HonestRunsRobustToControlLatency) {
    auto config = random_config(dlt::NetworkKind::kNcpFE, 4, 555);
    config.control_latency = GetParam();
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early) << outcome.termination_reason;
    EXPECT_EQ(outcome.fined_count(), 0u);
    EXPECT_GT(outcome.user_paid, 0.0);
    // Control latency shifts the schedule but cannot shrink it below the
    // zero-latency optimum.
    dlt::ProblemInstance instance{config.kind, config.z, config.true_w};
    EXPECT_GE(outcome.makespan, 0.95 * dlt::optimal_makespan(instance));
}

TEST_P(LatencySweep, DeviantsCaughtUnderLatency) {
    auto config = random_config(dlt::NetworkKind::kNcpFE, 4, 777);
    config.control_latency = GetParam();
    config.strategies.assign(4, agents::truthful());
    config.strategies[2] = agents::inconsistent_bidder();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.processors[2].fined);
    config.strategies[2] = agents::payment_cheater();
    const auto outcome2 = run_protocol(config);
    EXPECT_TRUE(outcome2.processors[2].fined);
}

class SignatureSweep : public ::testing::TestWithParam<crypto::SignatureAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(Schemes, SignatureSweep,
                         ::testing::Values(crypto::SignatureAlgorithm::kMerkle,
                                           crypto::SignatureAlgorithm::kMerkleWots,
                                           crypto::SignatureAlgorithm::kFast),
                         [](const auto& param_info) -> std::string {
                             switch (param_info.param) {
                                 case crypto::SignatureAlgorithm::kMerkle:
                                     return "Merkle";
                                 case crypto::SignatureAlgorithm::kMerkleWots:
                                     return "MerkleWots";
                                 default:
                                     return "Fast";
                             }
                         });

TEST_P(SignatureSweep, OutcomesIdenticalAcrossSchemes) {
    // The signature scheme must not affect any economic outcome.
    auto config = random_config(dlt::NetworkKind::kNcpNFE, 3, 901);
    config.signature_algorithm = GetParam();
    config.mss_height = 3;
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early);
    // Compare against the Fast reference.
    auto reference_config = config;
    reference_config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    const auto reference = run_protocol(reference_config);
    for (std::size_t i = 0; i < outcome.processors.size(); ++i) {
        EXPECT_DOUBLE_EQ(outcome.processors[i].payment, reference.processors[i].payment);
        EXPECT_DOUBLE_EQ(outcome.processors[i].phi, reference.processors[i].phi);
    }
    EXPECT_DOUBLE_EQ(outcome.makespan, reference.makespan);
}

TEST_P(SignatureSweep, DeviantCaughtUnderBothSchemes) {
    auto config = random_config(dlt::NetworkKind::kNcpFE, 3, 333);
    config.signature_algorithm = GetParam();
    config.mss_height = 4;
    config.strategies.assign(3, agents::truthful());
    config.strategies[1] = agents::false_accuser();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.processors[1].fined);
    EXPECT_FALSE(outcome.processors[0].fined);
}

}  // namespace
}  // namespace dlsbl::protocol
