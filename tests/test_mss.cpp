#include "crypto/mss.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace dlsbl::crypto {
namespace {

Digest seed(int n) { return Sha256::hash("mss-test-seed-" + std::to_string(n)); }

TEST(Mss, SignVerifyAllLeaves) {
    MssKeyPair key(seed(1), 3);  // 8 signatures
    EXPECT_EQ(key.capacity(), 8u);
    for (int i = 0; i < 8; ++i) {
        const util::Bytes msg = util::to_bytes("message-" + std::to_string(i));
        const MssSignature sig = key.sign(msg);
        EXPECT_EQ(sig.leaf_index, static_cast<std::uint64_t>(i));
        EXPECT_TRUE(MssKeyPair::verify(key.public_key(), msg, sig)) << i;
    }
    EXPECT_EQ(key.signatures_used(), 8u);
}

TEST(Mss, ExhaustionThrows) {
    MssKeyPair key(seed(2), 1);  // 2 signatures
    const util::Bytes msg = util::to_bytes("x");
    (void)key.sign(msg);
    (void)key.sign(msg);
    EXPECT_THROW(key.sign(msg), std::length_error);
}

TEST(Mss, RejectsTamperedMessage) {
    MssKeyPair key(seed(3), 2);
    const util::Bytes msg = util::to_bytes("the bid vector");
    const MssSignature sig = key.sign(msg);
    util::Bytes tampered = msg;
    tampered[0] ^= 0x01;
    EXPECT_FALSE(MssKeyPair::verify(key.public_key(), tampered, sig));
}

TEST(Mss, RejectsWrongRoot) {
    MssKeyPair alice(seed(4), 2);
    MssKeyPair bob(seed(5), 2);
    const util::Bytes msg = util::to_bytes("m");
    const MssSignature sig = alice.sign(msg);
    EXPECT_FALSE(MssKeyPair::verify(bob.public_key(), msg, sig));
}

TEST(Mss, RejectsLeafIndexMismatch) {
    MssKeyPair key(seed(6), 2);
    const util::Bytes msg = util::to_bytes("m");
    MssSignature sig = key.sign(msg);
    sig.leaf_index = 2;  // auth path still says 0
    EXPECT_FALSE(MssKeyPair::verify(key.public_key(), msg, sig));
}

TEST(Mss, RejectsSubstitutedOneTimeKey) {
    // An attacker cannot swap in its own OTS key: the Merkle path won't bind.
    MssKeyPair victim(seed(7), 2);
    MssKeyPair attacker(seed(8), 2);
    const util::Bytes msg = util::to_bytes("pay me everything");
    MssSignature forged = attacker.sign(msg);
    // Keep the attacker's valid OTS but claim the victim's tree.
    EXPECT_FALSE(MssKeyPair::verify(victim.public_key(), msg, forged));
}

TEST(Mss, SerializationRoundTrip) {
    MssKeyPair key(seed(9), 3);
    const util::Bytes msg = util::to_bytes("wire format");
    (void)key.sign(msg);  // burn leaf 0 so index is non-trivial
    const MssSignature sig = key.sign(msg);
    const auto parsed = MssSignature::deserialize(sig.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->leaf_index, 1u);
    EXPECT_TRUE(MssKeyPair::verify(key.public_key(), msg, *parsed));
}

TEST(Mss, DeserializeRejectsGarbage) {
    EXPECT_FALSE(MssSignature::deserialize(util::Bytes{}).has_value());
    EXPECT_FALSE(MssSignature::deserialize(util::Bytes(64, 0xab)).has_value());
    MssKeyPair key(seed(10), 1);
    util::Bytes wire = key.sign(util::to_bytes("m")).serialize();
    wire.resize(wire.size() / 2);
    EXPECT_FALSE(MssSignature::deserialize(wire).has_value());
}

TEST(Mss, DeterministicPublicKey) {
    MssKeyPair a(seed(11), 2);
    MssKeyPair b(seed(11), 2);
    EXPECT_EQ(a.public_key(), b.public_key());
}

TEST(Mss, HeightZeroSingleSignature) {
    MssKeyPair key(seed(12), 0);
    EXPECT_EQ(key.capacity(), 1u);
    const util::Bytes msg = util::to_bytes("only one");
    const MssSignature sig = key.sign(msg);
    EXPECT_TRUE(MssKeyPair::verify(key.public_key(), msg, sig));
    EXPECT_THROW(key.sign(msg), std::length_error);
}

TEST(Mss, ExcessiveHeightRejected) {
    EXPECT_THROW(MssKeyPair(seed(13), 17), std::invalid_argument);
}

// ---- Winternitz-backed MSS ----------------------------------------------------

TEST(MssWots, SignVerifyAllLeaves) {
    MssKeyPair key(seed(20), 2, OtsScheme::kWots);
    EXPECT_EQ(key.scheme(), OtsScheme::kWots);
    for (int i = 0; i < 4; ++i) {
        const util::Bytes msg = util::to_bytes("wots-msg-" + std::to_string(i));
        const MssSignature sig = key.sign(msg);
        EXPECT_EQ(sig.scheme, OtsScheme::kWots);
        EXPECT_TRUE(MssKeyPair::verify(key.public_key(), msg, sig)) << i;
    }
    EXPECT_THROW(key.sign(util::to_bytes("x")), std::length_error);
}

TEST(MssWots, SignaturesMuchSmallerThanLamport) {
    MssKeyPair lamport(seed(21), 1, OtsScheme::kLamport);
    MssKeyPair wots(seed(21), 1, OtsScheme::kWots);
    const util::Bytes msg = util::to_bytes("size comparison");
    const auto ls = lamport.sign(msg).serialize();
    const auto ws = wots.sign(msg).serialize();
    EXPECT_LT(ws.size() * 5, ls.size());
}

TEST(MssWots, SchemesAreNotInterchangeable) {
    // Same seed, different scheme: different roots, and a signature from
    // one never verifies under the other's public key.
    MssKeyPair lamport(seed(22), 2, OtsScheme::kLamport);
    MssKeyPair wots(seed(22), 2, OtsScheme::kWots);
    EXPECT_NE(lamport.public_key(), wots.public_key());
    const util::Bytes msg = util::to_bytes("m");
    EXPECT_FALSE(MssKeyPair::verify(wots.public_key(), msg, lamport.sign(msg)));
    EXPECT_FALSE(MssKeyPair::verify(lamport.public_key(), msg, wots.sign(msg)));
}

TEST(MssWots, SchemeTagTamperingFails) {
    MssKeyPair key(seed(23), 1, OtsScheme::kWots);
    const util::Bytes msg = util::to_bytes("m");
    MssSignature sig = key.sign(msg);
    sig.scheme = OtsScheme::kLamport;  // mismatched tag: OTS bytes won't parse
    EXPECT_FALSE(MssKeyPair::verify(key.public_key(), msg, sig));
}

TEST(MssWots, SerializationRoundTrip) {
    MssKeyPair key(seed(24), 2, OtsScheme::kWots);
    const util::Bytes msg = util::to_bytes("wire");
    const MssSignature sig = key.sign(msg);
    const auto parsed = MssSignature::deserialize(sig.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scheme, OtsScheme::kWots);
    EXPECT_TRUE(MssKeyPair::verify(key.public_key(), msg, *parsed));
}

TEST(MssWots, DeserializeRejectsBadSchemeTag) {
    MssKeyPair key(seed(25), 1, OtsScheme::kWots);
    util::Bytes wire = key.sign(util::to_bytes("m")).serialize();
    wire[0] = 0x7f;  // invalid scheme byte
    EXPECT_FALSE(MssSignature::deserialize(wire).has_value());
}

}  // namespace
}  // namespace dlsbl::crypto
