// Exact-rational certificate for the DLS-BL bonus identity: for a truthful
// profile, B_i = T(α(b₋ᵢ), b₋ᵢ) − T(α(b), b), computed with *no* floating
// point, must match the double-path mechanism to near machine precision.
#include <gtest/gtest.h>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"
#include "mech/dls_bl.hpp"
#include "util/rational.hpp"

namespace dlsbl::mech {
namespace {

using util::Rational;

Rational exact_makespan(dlt::NetworkKind kind, const std::vector<Rational>& w,
                        const Rational& z) {
    const auto alpha = dlt::optimal_allocation_generic<Rational>(
        kind, std::span<const Rational>(w), z);
    const auto t = dlt::finishing_times_generic<Rational>(
        kind, std::span<const Rational>(alpha), std::span<const Rational>(w), z);
    Rational best = t[0];
    for (const auto& ti : t) {
        if (ti > best) best = ti;
    }
    return best;
}

TEST(ExactMechanism, BonusIdentityExactVsDouble) {
    // w = {3/2, 2, 5/4, 9/5}, z = 1/4 — all exactly representable.
    const std::vector<Rational> w_exact{Rational::parse("3/2"), Rational::parse("2"),
                                        Rational::parse("5/4"), Rational::parse("9/5")};
    const Rational z_exact = Rational::parse("1/4");
    const std::vector<double> w{1.5, 2.0, 1.25, 1.8};
    const double z = 0.25;

    for (auto kind : {dlt::NetworkKind::kCP, dlt::NetworkKind::kNcpFE,
                      dlt::NetworkKind::kNcpNFE}) {
        const DlsBl mechanism(kind, z, w);
        const Rational t_full = exact_makespan(kind, w_exact, z_exact);

        for (std::size_t i = 0; i < w.size(); ++i) {
            // Leave-one-out system, honoring the LO-removal rule: removing
            // the load origin of an NCP system leaves a CP system.
            std::vector<Rational> reduced = w_exact;
            reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(i));
            dlt::NetworkKind reduced_kind = kind;
            if (kind != dlt::NetworkKind::kCP &&
                i == dlt::load_origin_index(kind, w.size())) {
                reduced_kind = dlt::NetworkKind::kCP;
            }
            const Rational t_excl = exact_makespan(reduced_kind, reduced, z_exact);
            const Rational bonus_exact = t_excl - t_full;
            EXPECT_NEAR(mechanism.bonus_of(i, w[i]), bonus_exact.to_double(), 1e-12)
                << dlt::to_string(kind) << " i=" << i;
            // Voluntary participation, proven exactly: B_i >= 0.
            EXPECT_GE(bonus_exact, Rational{0}) << dlt::to_string(kind) << " i=" << i;
        }
    }
}

TEST(ExactMechanism, ExactAllocationSumsToOneAllKinds) {
    const std::vector<Rational> w{Rational::parse("7/3"), Rational::parse("11/4"),
                                  Rational::parse("5/2")};
    const Rational z = Rational::parse("3/7");
    for (auto kind : {dlt::NetworkKind::kCP, dlt::NetworkKind::kNcpFE,
                      dlt::NetworkKind::kNcpNFE}) {
        const auto alpha = dlt::optimal_allocation_generic<Rational>(
            kind, std::span<const Rational>(w), z);
        Rational sum;
        for (const auto& a : alpha) sum += a;
        EXPECT_EQ(sum, Rational{1}) << dlt::to_string(kind);
    }
}

}  // namespace
}  // namespace dlsbl::mech
