// Byte-identity properties of the batched crypto hot paths.
//
// The contract under test: multi-lane hashing, batched chain expansion,
// HMAC midstates, parallel MSS keygen, and the Pki verification cache are
// pure throughput changes — every key, signature, digest, and verdict is
// byte-identical to the scalar single-threaded path.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "crypto/batch_verify.hpp"
#include "crypto/hmac.hpp"
#include "crypto/lamport.hpp"
#include "crypto/merkle.hpp"
#include "crypto/mss.hpp"
#include "crypto/pki.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wots.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dlsbl::crypto {
namespace {

class BackendGuard {
 public:
    BackendGuard() : saved_(sha256_backend()) {}
    ~BackendGuard() { sha256_set_backend(saved_); }
    BackendGuard(const BackendGuard&) = delete;
    BackendGuard& operator=(const BackendGuard&) = delete;

 private:
    std::string saved_;
};

Digest test_seed(std::uint64_t n) {
    util::ByteWriter w;
    w.str("batch-test-seed");
    w.u64(n);
    return Sha256::hash(std::span<const std::uint8_t>(w.data().data(), w.data().size()));
}

// 1024 random inputs of mixed lengths (0..~4200 bytes, dense around the
// padding boundaries): hash_many must equal the scalar one-shot per input,
// on every backend.
TEST(CryptoBatch, HashManyMatchesScalarOnRandomInputs) {
    util::Xoshiro256 rng{0xba7c4u};
    std::vector<util::Bytes> inputs;
    inputs.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
        std::size_t length;
        if (i % 4 == 0) {
            length = static_cast<std::size_t>(rng.uniform_int(48, 72));  // pad boundary
        } else if (i % 4 == 1) {
            length = static_cast<std::size_t>(rng.uniform_int(0, 16));
        } else if (i % 4 == 2) {
            length = static_cast<std::size_t>(rng.uniform_int(100, 400));
        } else {
            length = static_cast<std::size_t>(rng.uniform_int(1000, 4200));
        }
        util::Bytes data(length);
        for (auto& byte : data) {
            byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
        inputs.push_back(std::move(data));
    }

    std::vector<Digest> reference(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        reference[i] = Sha256::hash(inputs[i]);
    }

    BackendGuard guard;
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));
        std::vector<Digest> batched(inputs.size());
        Sha256::hash_many(inputs, batched);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            ASSERT_EQ(batched[i], reference[i])
                << "backend=" << backend << " index=" << i
                << " len=" << inputs[i].size();
        }
    }
}

TEST(CryptoBatch, Hash32ManyAndPairManyMatchScalar) {
    util::Xoshiro256 rng{0x5eedu};
    std::vector<Digest> digests(257);  // odd size: exercises lane remainders
    for (auto& d : digests) {
        for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }

    BackendGuard guard;
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));

        std::vector<Digest> out(digests.size());
        Sha256::hash32_many(digests, out);
        for (std::size_t i = 0; i < digests.size(); ++i) {
            ASSERT_EQ(out[i], Sha256::hash(std::span<const std::uint8_t>(
                                  digests[i].data(), digests[i].size())))
                << "backend=" << backend << " index=" << i;
        }

        const std::size_t pair_count = digests.size() / 2;
        std::vector<Digest> combined(pair_count);
        Sha256::hash_pair_many(
            std::span<const Digest>(digests.data(), 2 * pair_count), combined);
        for (std::size_t i = 0; i < pair_count; ++i) {
            ASSERT_EQ(combined[i], Sha256::hash_pair(digests[2 * i], digests[2 * i + 1]))
                << "backend=" << backend << " index=" << i;
        }

        // In-place hash32_many (the WOTS chain step shape).
        std::vector<Digest> chained = digests;
        Sha256::hash32_many(chained, chained);
        for (std::size_t i = 0; i < digests.size(); ++i) {
            ASSERT_EQ(chained[i], out[i]) << "backend=" << backend << " index=" << i;
        }
    }
}

// Lamport/WOTS/Merkle artifacts must not depend on the backend.
TEST(CryptoBatch, SignatureSchemesIdenticalAcrossBackends) {
    const Digest seed = test_seed(1);
    const util::Bytes message = util::to_bytes("the batched message");

    ASSERT_TRUE(sha256_set_backend("scalar"));
    const LamportKeyPair lamport_ref(seed);
    const auto lamport_sig_ref = lamport_ref.sign(message).serialize();
    const WotsKeyPair wots_ref(seed);
    const auto wots_sig_ref = wots_ref.sign(message).serialize();
    std::vector<Digest> leaves;
    for (std::uint64_t i = 0; i < 5; ++i) leaves.push_back(test_seed(100 + i));
    const MerkleTree tree_ref(leaves);
    sha256_set_backend("auto");

    BackendGuard guard;
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));
        const LamportKeyPair lamport(seed);
        EXPECT_EQ(lamport.public_key(), lamport_ref.public_key()) << backend;
        EXPECT_EQ(lamport.sign(message).serialize(), lamport_sig_ref) << backend;
        EXPECT_TRUE(LamportKeyPair::verify(lamport.public_key(), message,
                                           lamport_ref.sign(message)))
            << backend;

        const WotsKeyPair wots(seed);
        EXPECT_EQ(wots.public_key(), wots_ref.public_key()) << backend;
        EXPECT_EQ(wots.sign(message).serialize(), wots_sig_ref) << backend;
        EXPECT_TRUE(WotsKeyPair::verify(wots.public_key(), message, wots_ref.sign(message)))
            << backend;

        const MerkleTree tree(leaves);
        EXPECT_EQ(tree.root(), tree_ref.root()) << backend;
    }
}

// MSS keygen must produce identical keys and signatures at any job count
// (the exec::RunExecutor determinism contract applied to leaf keygen).
TEST(CryptoBatch, MssKeygenIdenticalAcrossJobCounts) {
    const Digest seed = test_seed(2);
    for (const OtsScheme scheme : {OtsScheme::kLamport, OtsScheme::kWots}) {
        std::vector<util::Bytes> reference_sigs;
        Digest reference_pk{};
        for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
            MssKeyPair key(seed, /*height=*/3, scheme, jobs);
            if (jobs == 1) {
                reference_pk = key.public_key();
            } else {
                EXPECT_EQ(key.public_key(), reference_pk)
                    << "scheme=" << static_cast<int>(scheme) << " jobs=" << jobs;
            }
            std::vector<util::Bytes> sigs;
            for (int m = 0; m < 4; ++m) {
                const util::Bytes message = util::to_bytes("msg-" + std::to_string(m));
                sigs.push_back(key.sign(message).serialize());
                const auto parsed = MssSignature::deserialize(sigs.back());
                ASSERT_TRUE(parsed.has_value());
                EXPECT_TRUE(MssKeyPair::verify(key.public_key(), message, *parsed));
            }
            if (jobs == 1) {
                reference_sigs = std::move(sigs);
            } else {
                EXPECT_EQ(sigs, reference_sigs)
                    << "scheme=" << static_cast<int>(scheme) << " jobs=" << jobs;
            }
        }
    }
}

TEST(CryptoBatch, HmacMidstateMatchesFreeFunction) {
    util::Xoshiro256 rng{0x4231u};
    for (int round = 0; round < 50; ++round) {
        util::Bytes key(static_cast<std::size_t>(rng.uniform_int(0, 100)));
        for (auto& byte : key) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const HmacSha256 prf(key);
        for (int m = 0; m < 4; ++m) {
            util::Bytes message(static_cast<std::size_t>(rng.uniform_int(0, 200)));
            for (auto& byte : message) {
                byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
            }
            EXPECT_EQ(prf.mac(message), hmac_sha256(key, message))
                << "round=" << round << " m=" << m;
        }
    }
}

// mss_verify_many must produce verdict-for-verdict what the eager
// deserialize + verify pair produces — over honest signatures, corrupted
// bytes, truncations, wrong keys, wrong messages, and cross-transplants,
// for both OTS schemes.
TEST(CryptoBatch, MssVerifyManyMatchesEagerVerdicts) {
    util::Xoshiro256 rng{0x77AAu};
    for (const OtsScheme scheme : {OtsScheme::kLamport, OtsScheme::kWots}) {
        MssKeyPair key_a(test_seed(10), /*height=*/3, scheme);
        MssKeyPair key_b(test_seed(11), /*height=*/3, scheme);
        const Digest pk_a = key_a.public_key();
        const Digest pk_b = key_b.public_key();

        std::vector<util::Bytes> messages;
        std::vector<util::Bytes> signatures;
        std::vector<const Digest*> keys;
        for (int m = 0; m < 6; ++m) {
            messages.push_back(util::to_bytes("batch-msg-" + std::to_string(m)));
            signatures.push_back(
                (m % 2 == 0 ? key_a : key_b).sign(messages.back()).serialize());
            keys.push_back(m % 2 == 0 ? &pk_a : &pk_b);
        }
        // Hostile variants: bit flips, truncation, key/message mismatch.
        for (int m = 0; m < 6; ++m) {
            util::Bytes corrupted = signatures[static_cast<std::size_t>(m)];
            corrupted[static_cast<std::size_t>(
                rng.uniform_int(0, corrupted.size() - 1))] ^= 0x40;
            messages.push_back(messages[static_cast<std::size_t>(m)]);
            signatures.push_back(std::move(corrupted));
            keys.push_back(keys[static_cast<std::size_t>(m)]);
        }
        messages.push_back(messages[0]);
        signatures.push_back(util::Bytes(signatures[0].begin(),
                                         signatures[0].begin() + 10));  // truncated
        keys.push_back(&pk_a);
        messages.push_back(messages[1]);
        signatures.push_back(signatures[1]);
        keys.push_back(&pk_a);  // wrong root for key_b's signature
        messages.push_back(util::to_bytes("different message"));
        signatures.push_back(signatures[0]);
        keys.push_back(&pk_a);  // right key, wrong message

        std::vector<MssVerifyItem> items(signatures.size());
        for (std::size_t i = 0; i < signatures.size(); ++i) {
            items[i] = {keys[i], messages[i], signatures[i]};
        }
        std::vector<std::uint8_t> verdicts(items.size(), 0xCD);
        static_assert(sizeof(bool) == 1);
        mss_verify_many(items, reinterpret_cast<bool*>(verdicts.data()));

        for (std::size_t i = 0; i < items.size(); ++i) {
            const auto parsed = MssSignature::deserialize(signatures[i]);
            const bool eager =
                parsed.has_value() && MssKeyPair::verify(*keys[i], messages[i], *parsed);
            EXPECT_EQ(verdicts[i] != 0, eager)
                << "scheme=" << static_cast<int>(scheme) << " item=" << i;
        }
        // The honest third must all verify (guards against a vacuous pass).
        for (std::size_t i = 0; i < 6; ++i) EXPECT_TRUE(verdicts[i] != 0);
    }
}

// Pki::verify_many must be observably identical to sequential Pki::verify:
// same verdicts, same cache content afterwards, same hit/miss statistics —
// including unknown signers, repeated envelopes, and a mix of batchable
// (MSS) and closure-backed (kFast) registrations.
TEST(CryptoBatch, PkiVerifyManyMatchesSequentialVerifyAndStats) {
    const auto run = [](bool batched) {
        Pki pki;
        auto mss_signer = make_registered_signer(pki, "P1", 42,
                                                 SignatureAlgorithm::kMerkleWots, 3);
        auto lam_signer =
            make_registered_signer(pki, "P2", 43, SignatureAlgorithm::kMerkle, 3);
        auto fast_signer =
            make_registered_signer(pki, "P3", 44, SignatureAlgorithm::kFast);

        std::vector<std::string> signers;
        std::vector<util::Bytes> payloads;
        std::vector<util::Bytes> signatures;
        const auto add = [&](const std::string& who, Signer& signer,
                             const std::string& text, bool corrupt) {
            signers.push_back(who);
            payloads.push_back(util::to_bytes(text));
            signatures.push_back(signer.sign(payloads.back()));
            if (corrupt) signatures.back()[0] ^= 0x01;
        };
        add("P1", *mss_signer, "alpha", false);
        add("P2", *lam_signer, "beta", false);
        add("P3", *fast_signer, "gamma", false);
        add("P1", *mss_signer, "delta", true);
        // Duplicate of item 0: a cache hit on the sequential path, and the
        // batch path must account it identically.
        signers.push_back("P1");
        payloads.push_back(payloads[0]);
        signatures.push_back(signatures[0]);
        // Unknown signer: false, no stats movement.
        signers.push_back("P9");
        payloads.push_back(util::to_bytes("zeta"));
        signatures.push_back(signatures[0]);

        std::vector<std::uint8_t> verdicts(signers.size(), 0xCD);
        static_assert(sizeof(bool) == 1);
        if (batched) {
            std::vector<Pki::VerifyRequest> requests(signers.size());
            for (std::size_t i = 0; i < signers.size(); ++i) {
                requests[i] = {&signers[i], payloads[i], signatures[i]};
            }
            pki.verify_many(requests, reinterpret_cast<bool*>(verdicts.data()));
        } else {
            for (std::size_t i = 0; i < signers.size(); ++i) {
                verdicts[i] = pki.verify(signers[i], payloads[i], signatures[i]) ? 1 : 0;
            }
        }
        const auto stats = pki.verify_cache_stats();
        return std::tuple(std::vector<bool>(verdicts.begin(), verdicts.end()),
                          stats.hits, stats.misses);
    };

    const auto [eager_verdicts, eager_hits, eager_misses] = run(false);
    const auto [batch_verdicts, batch_hits, batch_misses] = run(true);
    EXPECT_EQ(eager_verdicts,
              (std::vector<bool>{true, true, true, false, true, false}));
    EXPECT_EQ(batch_verdicts, eager_verdicts);
    EXPECT_EQ(batch_hits, eager_hits);
    EXPECT_EQ(batch_misses, eager_misses);
}

// The ragged 16-stream batch hasher must equal Sha256::hash per stream for
// every mix of lengths (empty, sub-block, block-boundary, multi-block).
TEST(CryptoBatch, Sha256StreamsMatchesScalarHash) {
    BackendGuard guard;
    util::Xoshiro256 rng{0x5EEDu};
    std::vector<util::Bytes> streams;
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{1}, std::size_t{55}, std::size_t{56},
          std::size_t{63}, std::size_t{64}, std::size_t{65}, std::size_t{119},
          std::size_t{120}, std::size_t{128}, std::size_t{1000}}) {
        util::Bytes data(len);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        streams.push_back(std::move(data));
    }
    // Pad past one SoA group so the leftover lane-refill path runs too.
    while (streams.size() < 37) {
        util::Bytes data(static_cast<std::size_t>(rng.uniform_int(0, 300)));
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        streams.push_back(std::move(data));
    }

    for (const char* backend : {"scalar", "auto"}) {
        ASSERT_TRUE(sha256_set_backend(backend));
        std::vector<const std::uint8_t*> ptrs(streams.size());
        std::vector<std::size_t> lens(streams.size());
        for (std::size_t i = 0; i < streams.size(); ++i) {
            ptrs[i] = streams[i].data();
            lens[i] = streams[i].size();
        }
        std::vector<Digest> out(streams.size());
        detail::sha256_streams(ptrs.data(), lens.data(), streams.size(), out.data());
        for (std::size_t i = 0; i < streams.size(); ++i) {
            EXPECT_EQ(out[i], Sha256::hash(std::span<const std::uint8_t>(
                                  streams[i].data(), streams[i].size())))
                << backend << " stream=" << i;
        }
    }
}

TEST(CryptoBatch, PkiVerifyCacheHitsAndStaysCorrect) {
    Pki pki;
    auto signer = make_registered_signer(pki, "P1", 42,
                                         SignatureAlgorithm::kMerkleWots, 2);
    const util::Bytes payload = util::to_bytes("payload");
    const util::Bytes signature = signer->sign(payload);

    const auto before = pki.verify_cache_stats();
    EXPECT_TRUE(pki.verify("P1", payload, signature));
    EXPECT_TRUE(pki.verify("P1", payload, signature));
    EXPECT_TRUE(pki.verify("P1", payload, signature));
    const auto after = pki.verify_cache_stats();
    EXPECT_EQ(after.misses - before.misses, 1u);
    EXPECT_EQ(after.hits - before.hits, 2u);

    // A tampered signature is a distinct key: cached as false, not served
    // from the genuine entry.
    util::Bytes tampered = signature;
    tampered[0] ^= 0x01;
    EXPECT_FALSE(pki.verify("P1", payload, tampered));
    EXPECT_FALSE(pki.verify("P1", payload, tampered));
    const auto tampered_stats = pki.verify_cache_stats();
    EXPECT_EQ(tampered_stats.misses - after.misses, 1u);
    EXPECT_EQ(tampered_stats.hits - after.hits, 1u);

    // Capacity 0 disables caching (stats freeze).
    pki.set_verify_cache_capacity(0);
    EXPECT_TRUE(pki.verify("P1", payload, signature));
    const auto disabled = pki.verify_cache_stats();
    EXPECT_EQ(disabled.hits, tampered_stats.hits);
    EXPECT_EQ(disabled.misses, tampered_stats.misses);
}

}  // namespace
}  // namespace dlsbl::crypto
