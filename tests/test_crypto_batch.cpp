// Byte-identity properties of the batched crypto hot paths.
//
// The contract under test: multi-lane hashing, batched chain expansion,
// HMAC midstates, parallel MSS keygen, and the Pki verification cache are
// pure throughput changes — every key, signature, digest, and verdict is
// byte-identical to the scalar single-threaded path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/lamport.hpp"
#include "crypto/merkle.hpp"
#include "crypto/mss.hpp"
#include "crypto/pki.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wots.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dlsbl::crypto {
namespace {

class BackendGuard {
 public:
    BackendGuard() : saved_(sha256_backend()) {}
    ~BackendGuard() { sha256_set_backend(saved_); }
    BackendGuard(const BackendGuard&) = delete;
    BackendGuard& operator=(const BackendGuard&) = delete;

 private:
    std::string saved_;
};

Digest test_seed(std::uint64_t n) {
    util::ByteWriter w;
    w.str("batch-test-seed");
    w.u64(n);
    return Sha256::hash(std::span<const std::uint8_t>(w.data().data(), w.data().size()));
}

// 1024 random inputs of mixed lengths (0..~4200 bytes, dense around the
// padding boundaries): hash_many must equal the scalar one-shot per input,
// on every backend.
TEST(CryptoBatch, HashManyMatchesScalarOnRandomInputs) {
    util::Xoshiro256 rng{0xba7c4u};
    std::vector<util::Bytes> inputs;
    inputs.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
        std::size_t length;
        if (i % 4 == 0) {
            length = static_cast<std::size_t>(rng.uniform_int(48, 72));  // pad boundary
        } else if (i % 4 == 1) {
            length = static_cast<std::size_t>(rng.uniform_int(0, 16));
        } else if (i % 4 == 2) {
            length = static_cast<std::size_t>(rng.uniform_int(100, 400));
        } else {
            length = static_cast<std::size_t>(rng.uniform_int(1000, 4200));
        }
        util::Bytes data(length);
        for (auto& byte : data) {
            byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
        inputs.push_back(std::move(data));
    }

    std::vector<Digest> reference(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        reference[i] = Sha256::hash(inputs[i]);
    }

    BackendGuard guard;
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));
        std::vector<Digest> batched(inputs.size());
        Sha256::hash_many(inputs, batched);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            ASSERT_EQ(batched[i], reference[i])
                << "backend=" << backend << " index=" << i
                << " len=" << inputs[i].size();
        }
    }
}

TEST(CryptoBatch, Hash32ManyAndPairManyMatchScalar) {
    util::Xoshiro256 rng{0x5eedu};
    std::vector<Digest> digests(257);  // odd size: exercises lane remainders
    for (auto& d : digests) {
        for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }

    BackendGuard guard;
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));

        std::vector<Digest> out(digests.size());
        Sha256::hash32_many(digests, out);
        for (std::size_t i = 0; i < digests.size(); ++i) {
            ASSERT_EQ(out[i], Sha256::hash(std::span<const std::uint8_t>(
                                  digests[i].data(), digests[i].size())))
                << "backend=" << backend << " index=" << i;
        }

        const std::size_t pair_count = digests.size() / 2;
        std::vector<Digest> combined(pair_count);
        Sha256::hash_pair_many(
            std::span<const Digest>(digests.data(), 2 * pair_count), combined);
        for (std::size_t i = 0; i < pair_count; ++i) {
            ASSERT_EQ(combined[i], Sha256::hash_pair(digests[2 * i], digests[2 * i + 1]))
                << "backend=" << backend << " index=" << i;
        }

        // In-place hash32_many (the WOTS chain step shape).
        std::vector<Digest> chained = digests;
        Sha256::hash32_many(chained, chained);
        for (std::size_t i = 0; i < digests.size(); ++i) {
            ASSERT_EQ(chained[i], out[i]) << "backend=" << backend << " index=" << i;
        }
    }
}

// Lamport/WOTS/Merkle artifacts must not depend on the backend.
TEST(CryptoBatch, SignatureSchemesIdenticalAcrossBackends) {
    const Digest seed = test_seed(1);
    const util::Bytes message = util::to_bytes("the batched message");

    ASSERT_TRUE(sha256_set_backend("scalar"));
    const LamportKeyPair lamport_ref(seed);
    const auto lamport_sig_ref = lamport_ref.sign(message).serialize();
    const WotsKeyPair wots_ref(seed);
    const auto wots_sig_ref = wots_ref.sign(message).serialize();
    std::vector<Digest> leaves;
    for (std::uint64_t i = 0; i < 5; ++i) leaves.push_back(test_seed(100 + i));
    const MerkleTree tree_ref(leaves);
    sha256_set_backend("auto");

    BackendGuard guard;
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));
        const LamportKeyPair lamport(seed);
        EXPECT_EQ(lamport.public_key(), lamport_ref.public_key()) << backend;
        EXPECT_EQ(lamport.sign(message).serialize(), lamport_sig_ref) << backend;
        EXPECT_TRUE(LamportKeyPair::verify(lamport.public_key(), message,
                                           lamport_ref.sign(message)))
            << backend;

        const WotsKeyPair wots(seed);
        EXPECT_EQ(wots.public_key(), wots_ref.public_key()) << backend;
        EXPECT_EQ(wots.sign(message).serialize(), wots_sig_ref) << backend;
        EXPECT_TRUE(WotsKeyPair::verify(wots.public_key(), message, wots_ref.sign(message)))
            << backend;

        const MerkleTree tree(leaves);
        EXPECT_EQ(tree.root(), tree_ref.root()) << backend;
    }
}

// MSS keygen must produce identical keys and signatures at any job count
// (the exec::RunExecutor determinism contract applied to leaf keygen).
TEST(CryptoBatch, MssKeygenIdenticalAcrossJobCounts) {
    const Digest seed = test_seed(2);
    for (const OtsScheme scheme : {OtsScheme::kLamport, OtsScheme::kWots}) {
        std::vector<util::Bytes> reference_sigs;
        Digest reference_pk{};
        for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
            MssKeyPair key(seed, /*height=*/3, scheme, jobs);
            if (jobs == 1) {
                reference_pk = key.public_key();
            } else {
                EXPECT_EQ(key.public_key(), reference_pk)
                    << "scheme=" << static_cast<int>(scheme) << " jobs=" << jobs;
            }
            std::vector<util::Bytes> sigs;
            for (int m = 0; m < 4; ++m) {
                const util::Bytes message = util::to_bytes("msg-" + std::to_string(m));
                sigs.push_back(key.sign(message).serialize());
                const auto parsed = MssSignature::deserialize(sigs.back());
                ASSERT_TRUE(parsed.has_value());
                EXPECT_TRUE(MssKeyPair::verify(key.public_key(), message, *parsed));
            }
            if (jobs == 1) {
                reference_sigs = std::move(sigs);
            } else {
                EXPECT_EQ(sigs, reference_sigs)
                    << "scheme=" << static_cast<int>(scheme) << " jobs=" << jobs;
            }
        }
    }
}

TEST(CryptoBatch, HmacMidstateMatchesFreeFunction) {
    util::Xoshiro256 rng{0x4231u};
    for (int round = 0; round < 50; ++round) {
        util::Bytes key(static_cast<std::size_t>(rng.uniform_int(0, 100)));
        for (auto& byte : key) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const HmacSha256 prf(key);
        for (int m = 0; m < 4; ++m) {
            util::Bytes message(static_cast<std::size_t>(rng.uniform_int(0, 200)));
            for (auto& byte : message) {
                byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
            }
            EXPECT_EQ(prf.mac(message), hmac_sha256(key, message))
                << "round=" << round << " m=" << m;
        }
    }
}

TEST(CryptoBatch, PkiVerifyCacheHitsAndStaysCorrect) {
    Pki pki;
    auto signer = make_registered_signer(pki, "P1", 42,
                                         SignatureAlgorithm::kMerkleWots, 2);
    const util::Bytes payload = util::to_bytes("payload");
    const util::Bytes signature = signer->sign(payload);

    const auto before = pki.verify_cache_stats();
    EXPECT_TRUE(pki.verify("P1", payload, signature));
    EXPECT_TRUE(pki.verify("P1", payload, signature));
    EXPECT_TRUE(pki.verify("P1", payload, signature));
    const auto after = pki.verify_cache_stats();
    EXPECT_EQ(after.misses - before.misses, 1u);
    EXPECT_EQ(after.hits - before.hits, 2u);

    // A tampered signature is a distinct key: cached as false, not served
    // from the genuine entry.
    util::Bytes tampered = signature;
    tampered[0] ^= 0x01;
    EXPECT_FALSE(pki.verify("P1", payload, tampered));
    EXPECT_FALSE(pki.verify("P1", payload, tampered));
    const auto tampered_stats = pki.verify_cache_stats();
    EXPECT_EQ(tampered_stats.misses - after.misses, 1u);
    EXPECT_EQ(tampered_stats.hits - after.hits, 1u);

    // Capacity 0 disables caching (stats freeze).
    pki.set_verify_cache_capacity(0);
    EXPECT_TRUE(pki.verify("P1", payload, signature));
    const auto disabled = pki.verify_cache_stats();
    EXPECT_EQ(disabled.hits, tampered_stats.hits);
    EXPECT_EQ(disabled.misses, tampered_stats.misses);
}

}  // namespace
}  // namespace dlsbl::crypto
