// Best-response dynamics (mech) + the repeated-job marketplace (protocol).
#include <gtest/gtest.h>

#include "agents/zoo.hpp"
#include "mech/dynamics.hpp"
#include "protocol/marketplace.hpp"
#include "util/rng.hpp"

namespace dlsbl {
namespace {

// ---- best-response dynamics --------------------------------------------------

TEST(Dynamics, BestResponseToAnyProfileIsTruthful) {
    // Dominant strategy: the best response is factor 1.0 regardless of what
    // the others currently bid.
    const std::vector<double> w{1.0, 2.0, 1.5, 0.8};
    util::Xoshiro256 rng{14};
    for (auto kind : {dlt::NetworkKind::kCP, dlt::NetworkKind::kNcpFE,
                      dlt::NetworkKind::kNcpNFE}) {
        for (int trial = 0; trial < 10; ++trial) {
            std::vector<double> bids(w.size());
            for (std::size_t i = 0; i < w.size(); ++i) {
                bids[i] = w[i] * rng.uniform(0.3, 3.0);
            }
            for (std::size_t i = 0; i < w.size(); ++i) {
                EXPECT_DOUBLE_EQ(
                    mech::best_response_factor(kind, 0.25, w, bids, i), 1.0)
                    << dlt::to_string(kind) << " agent " << i;
            }
        }
    }
}

TEST(Dynamics, ConvergesToTruthInOneRound) {
    const std::vector<double> w{1.0, 2.0, 1.5};
    const auto result = mech::run_best_response_dynamics(
        dlt::NetworkKind::kNcpFE, 0.25, w, {0.4, 2.5, 5.0});
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(result.truthful_fixed_point);
    // Dominance makes convergence immediate: one update round.
    EXPECT_LE(result.rounds_to_converge, 1u);
}

TEST(Dynamics, TruthfulProfileIsFixedPoint) {
    const std::vector<double> w{1.0, 2.0, 1.5};
    const auto result = mech::run_best_response_dynamics(
        dlt::NetworkKind::kNcpNFE, 0.25, w, {1.0, 1.0, 1.0});
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.rounds_to_converge, 0u);
    EXPECT_TRUE(result.truthful_fixed_point);
}

TEST(Dynamics, HistoryRecordsTrajectory) {
    const std::vector<double> w{1.0, 2.0};
    const auto result = mech::run_best_response_dynamics(
        dlt::NetworkKind::kNcpFE, 0.2, w, {3.0, 0.25});
    ASSERT_GE(result.factor_history.size(), 2u);
    EXPECT_EQ(result.factor_history.front(), (std::vector<double>{3.0, 0.25}));
    EXPECT_EQ(result.factor_history.back(), (std::vector<double>{1.0, 1.0}));
}

TEST(Dynamics, Validation) {
    const std::vector<double> w{1.0, 2.0};
    EXPECT_THROW(
        mech::best_response_factor(dlt::NetworkKind::kCP, 0.2, w, {1.0}, 0),
        std::invalid_argument);
    EXPECT_THROW(
        mech::best_response_factor(dlt::NetworkKind::kCP, 0.2, w, {1.0, 2.0}, 5),
        std::out_of_range);
    EXPECT_THROW(mech::run_best_response_dynamics(dlt::NetworkKind::kCP, 0.2, w,
                                                  {1.0}),
                 std::invalid_argument);
}

// ---- marketplace -----------------------------------------------------------------

protocol::MarketConfig small_market() {
    protocol::MarketConfig config;
    config.owners = {
        {"honest-a", agents::truthful()},
        {"honest-b", agents::truthful()},
        {"liar", agents::misreporter(1.5)},
        {"cheat", agents::false_short_claimer()},
    };
    config.jobs = 8;
    config.seed = 9;
    config.block_count = 900;
    return config;
}

TEST(Marketplace, Validation) {
    protocol::MarketConfig config;
    EXPECT_THROW(protocol::run_marketplace(config), std::invalid_argument);
    config = small_market();
    config.jobs = 0;
    EXPECT_THROW(protocol::run_marketplace(config), std::invalid_argument);
    config = small_market();
    config.fixed_fine = 0.0;
    EXPECT_THROW(protocol::run_marketplace(config), std::invalid_argument);
}

TEST(Marketplace, HonestOwnersNeverFinedNeverLose) {
    const auto report = protocol::run_marketplace(small_market());
    EXPECT_EQ(report.jobs_run, 8u);
    for (const char* label : {"honest-a", "honest-b"}) {
        const auto& account = report.account(label);
        EXPECT_EQ(account.times_fined, 0u) << label;
        EXPECT_GT(account.total_utility, 0.0) << label;
        EXPECT_DOUBLE_EQ(account.gain_from_strategy(), 0.0) << label;
    }
}

TEST(Marketplace, NoStrategyBeatsItsHonestCounterfactual) {
    const auto report = protocol::run_marketplace(small_market());
    for (const auto& account : report.accounts) {
        // Block-rounding tolerance per job.
        EXPECT_LE(account.gain_from_strategy(), 8 * 2e-3) << account.label;
    }
}

TEST(Marketplace, CheaterFinedOnFeJobs) {
    // The fake-shortage deviation only fires when the cheater *receives*
    // load (on NFE jobs its slot may be the LO); it must be fined on every
    // job where it deviates and end deeply negative.
    const auto report = protocol::run_marketplace(small_market());
    const auto& cheat = report.account("cheat");
    EXPECT_GT(cheat.times_fined, 0u);
    EXPECT_LT(cheat.total_utility, 0.0);
    EXPECT_EQ(report.jobs_terminated, cheat.times_fined);
}

TEST(Marketplace, DeterministicForSeed) {
    const auto a = protocol::run_marketplace(small_market());
    const auto b = protocol::run_marketplace(small_market());
    for (std::size_t i = 0; i < a.accounts.size(); ++i) {
        EXPECT_EQ(a.accounts[i].total_utility, b.accounts[i].total_utility);
    }
    EXPECT_EQ(a.total_user_spend, b.total_user_spend);
}

TEST(Marketplace, CounterfactualCanBeDisabled) {
    auto config = small_market();
    config.with_counterfactual = false;
    const auto report = protocol::run_marketplace(config);
    // Without replays the counterfactual column mirrors actuals (gain 0).
    for (const auto& account : report.accounts) {
        EXPECT_DOUBLE_EQ(account.gain_from_strategy(), 0.0) << account.label;
    }
    EXPECT_THROW((void)report.account("nobody"), std::out_of_range);
}

}  // namespace
}  // namespace dlsbl
