// Star-network extension: heterogeneous links, where — unlike the bus
// (Theorem 2.2) — the activation order matters and the optimal order serves
// the fastest links first.
#include "dlt/star.hpp"

#include <gtest/gtest.h>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"
#include "util/rng.hpp"

namespace dlsbl::dlt {
namespace {

TEST(Star, Validation) {
    StarInstance bad;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad.w = {1.0, 2.0};
    bad.z = {0.1};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad.z = {0.1, -0.2};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad.z = {0.1, 0.2};
    bad.w = {1.0, 0.0};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Star, HomogeneousLinksReduceToBus) {
    StarInstance star{{0.4, 0.4, 0.4}, {1.0, 2.0, 3.0}};
    const auto bus = star.as_bus(NetworkKind::kCP);
    const auto star_alpha = star_optimal_allocation(star);
    const auto bus_alpha = optimal_allocation(bus);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(star_alpha[i], bus_alpha[i], 1e-12);
    }
    EXPECT_NEAR(star_optimal_makespan(star), optimal_makespan(bus), 1e-12);
}

TEST(Star, AsBusRejectsHeterogeneous) {
    StarInstance star{{0.4, 0.5}, {1.0, 2.0}};
    EXPECT_THROW(star.as_bus(NetworkKind::kCP), std::invalid_argument);
}

TEST(Star, EqualFinishAtOptimum) {
    StarInstance star{{0.1, 0.5, 0.3, 0.2}, {1.0, 2.0, 1.5, 0.8}};
    const auto alpha = star_optimal_allocation(star);
    const auto t = star_finishing_times(star, alpha);
    for (std::size_t i = 1; i < t.size(); ++i) EXPECT_NEAR(t[i], t[0], 1e-12);
    double sum = 0.0;
    for (double a : alpha) {
        EXPECT_GT(a, 0.0);
        sum += a;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Star, RecurrenceHolds) {
    StarInstance star{{0.1, 0.5, 0.3}, {1.0, 2.0, 1.5}};
    const auto alpha = star_optimal_allocation(star);
    for (std::size_t i = 0; i + 1 < 3; ++i) {
        EXPECT_NEAR(alpha[i] * star.w[i], alpha[i + 1] * (star.z[i + 1] + star.w[i + 1]),
                    1e-12);
    }
}

TEST(Star, OrderMattersWithHeterogeneousLinks) {
    // Contrast with Theorem 2.2: permuting processors changes the makespan.
    StarInstance star{{0.05, 0.8, 0.3}, {1.0, 1.0, 1.0}};
    const auto search = star_search_orders(star);
    EXPECT_GT(search.worst_makespan, search.best_makespan + 1e-6);
}

TEST(Star, BandwidthOrderIsOptimal) {
    // Fastest-link-first matches exhaustive search across random instances.
    util::Xoshiro256 rng{31};
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t m = 2 + trial % 5;  // up to 6 -> 720 permutations
        StarInstance star;
        star.z.resize(m);
        star.w.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
            star.z[i] = rng.uniform(0.05, 1.0);
            star.w[i] = rng.uniform(0.5, 4.0);
        }
        const auto order = star_bandwidth_order(star);
        const double bandwidth_makespan =
            star_optimal_makespan(star_reorder(star, order));
        const auto search = star_search_orders(star);
        EXPECT_NEAR(bandwidth_makespan, search.best_makespan,
                    1e-9 * search.best_makespan)
            << "trial " << trial;
    }
}

TEST(Star, BandwidthOrderIndependentOfW) {
    StarInstance star{{0.5, 0.1, 0.3}, {0.1, 10.0, 1.0}};
    const auto order = star_bandwidth_order(star);
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Star, ReorderValidation) {
    StarInstance star{{0.1, 0.2}, {1.0, 2.0}};
    EXPECT_THROW(star_reorder(star, {0}), std::invalid_argument);
    StarInstance big;
    big.z.assign(9, 0.1);
    big.w.assign(9, 1.0);
    EXPECT_THROW(star_search_orders(big), std::invalid_argument);
}

TEST(Star, SingleProcessor) {
    StarInstance star{{0.4}, {2.0}};
    const auto alpha = star_optimal_allocation(star);
    EXPECT_DOUBLE_EQ(alpha[0], 1.0);
    EXPECT_DOUBLE_EQ(star_optimal_makespan(star), 0.4 + 2.0);
}

TEST(Star, FasterLinkEarlierGetsMoreLoad) {
    // With equal compute speeds, the first-served (fastest link) processor
    // carries the largest share.
    StarInstance star{{0.05, 0.2, 0.6}, {1.0, 1.0, 1.0}};
    const auto alpha = star_optimal_allocation(star);
    EXPECT_GT(alpha[0], alpha[1]);
    EXPECT_GT(alpha[1], alpha[2]);
}

}  // namespace
}  // namespace dlsbl::dlt
