#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dlsbl::util {
namespace {

TEST(Bytes, HexRoundTrip) {
    const Bytes data{0x00, 0x01, 0xab, 0xff, 0x10};
    EXPECT_EQ(to_hex(data), "0001abff10");
    EXPECT_EQ(from_hex("0001abff10"), data);
    EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(Bytes, HexRejectsInvalid) {
    EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
    EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
}

TEST(Bytes, WriterReaderRoundTrip) {
    ByteWriter w;
    w.u8(7);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.f64(3.14159);
    w.str("hello world");
    w.bytes(Bytes{1, 2, 3});

    ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
    EXPECT_EQ(r.str(), "hello world");
    EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
    EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, ReaderUnderflowThrows) {
    ByteWriter w;
    w.u8(1);
    ByteReader r(w.data());
    r.u8();
    EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(Bytes, EmptyStringAndBytes) {
    ByteWriter w;
    w.str("");
    w.bytes(Bytes{});
    ByteReader r(w.data());
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.bytes(), Bytes{});
    EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, F64PreservesBitPatterns) {
    ByteWriter w;
    w.f64(0.0);
    w.f64(-0.0);
    w.f64(1e308);
    ByteReader r(w.data());
    EXPECT_EQ(r.f64(), 0.0);
    const double negzero = r.f64();
    EXPECT_EQ(negzero, 0.0);
    EXPECT_TRUE(std::signbit(negzero));
    EXPECT_DOUBLE_EQ(r.f64(), 1e308);
}

TEST(Bytes, CanonicalEncodingIsDeterministic) {
    // Two writers encoding the same logical content must produce identical
    // byte sequences (signatures depend on this).
    ByteWriter a, b;
    for (ByteWriter* w : {&a, &b}) {
        w->str("bid");
        w->f64(1.25);
        w->u64(9);
    }
    EXPECT_EQ(a.data(), b.data());
}

}  // namespace
}  // namespace dlsbl::util
