#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace dlsbl::dlt {
namespace {

constexpr double kTol = 1e-12;

ProblemInstance make(NetworkKind kind, double z, std::vector<double> w) {
    ProblemInstance instance;
    instance.kind = kind;
    instance.z = z;
    instance.w = std::move(w);
    return instance;
}

TEST(ClosedForm, SingleProcessorGetsEverything) {
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const auto alpha = optimal_allocation(make(kind, 0.5, {2.0}));
        ASSERT_EQ(alpha.size(), 1u);
        EXPECT_DOUBLE_EQ(alpha[0], 1.0);
    }
}

TEST(ClosedForm, TwoProcessorCpKnownFormula) {
    // m=2 CP: α_1 = (z + w_2) / (z + w_1 + w_2) from recurrence (7).
    const double z = 0.5, w1 = 2.0, w2 = 3.0;
    const auto alpha = optimal_allocation(make(NetworkKind::kCP, z, {w1, w2}));
    EXPECT_NEAR(alpha[0], (z + w2) / (z + w1 + w2), kTol);
    EXPECT_NEAR(alpha[1], w1 / (z + w1 + w2), kTol);
}

TEST(ClosedForm, TwoProcessorNfeKnownFormula) {
    // m=2 NCP-NFE: α_1 w_1 = α_2 w_2 (recurrence 9), so α_1 = w_2/(w_1+w_2).
    const double w1 = 2.0, w2 = 3.0;
    const auto alpha = optimal_allocation(make(NetworkKind::kNcpNFE, 0.7, {w1, w2}));
    EXPECT_NEAR(alpha[0], w2 / (w1 + w2), kTol);
    EXPECT_NEAR(alpha[1], w1 / (w1 + w2), kTol);
}

TEST(ClosedForm, CpAndNcpFeShareAllocations) {
    // Recurrence (7) governs both kinds, so allocations agree even though
    // finishing times differ.
    const std::vector<double> w{1.0, 2.5, 0.7, 3.2};
    const auto cp = optimal_allocation(make(NetworkKind::kCP, 0.4, w));
    const auto fe = optimal_allocation(make(NetworkKind::kNcpFE, 0.4, w));
    ASSERT_EQ(cp.size(), fe.size());
    for (std::size_t i = 0; i < cp.size(); ++i) EXPECT_NEAR(cp[i], fe[i], kTol);
}

TEST(ClosedForm, AllocationIsFeasible) {
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const auto alpha =
            optimal_allocation(make(kind, 0.3, {1.0, 2.0, 3.0, 4.0, 5.0}));
        EXPECT_TRUE(is_feasible_allocation(alpha));
        for (double a : alpha) EXPECT_GT(a, 0.0);  // Theorem 2.1: all participate
    }
}

TEST(ClosedForm, RecurrenceSatisfiedNcpFe) {
    // α_i w_i = α_{i+1} z + α_{i+1} w_{i+1} for i = 1..m-1  (eq 7).
    const double z = 0.6;
    const std::vector<double> w{1.5, 2.0, 0.9, 4.0};
    const auto alpha = optimal_allocation(make(NetworkKind::kNcpFE, z, w));
    for (std::size_t i = 0; i + 1 < w.size(); ++i) {
        EXPECT_NEAR(alpha[i] * w[i], alpha[i + 1] * (z + w[i + 1]), 1e-12) << i;
    }
}

TEST(ClosedForm, RecurrencesSatisfiedNcpNfe) {
    // eq (8) for i = 1..m-2 and eq (9) for the last pair.
    const double z = 0.6;
    const std::vector<double> w{1.5, 2.0, 0.9, 4.0};
    const auto alpha = optimal_allocation(make(NetworkKind::kNcpNFE, z, w));
    const std::size_t m = w.size();
    for (std::size_t i = 0; i + 2 < m; ++i) {
        EXPECT_NEAR(alpha[i] * w[i], alpha[i + 1] * (z + w[i + 1]), 1e-12) << i;
    }
    EXPECT_NEAR(alpha[m - 2] * w[m - 2], alpha[m - 1] * w[m - 1], 1e-12);
}

TEST(ClosedForm, EqualFinishTimes) {
    // Theorem 2.1: all processors finish simultaneously at the optimum.
    const std::vector<double> w{3.0, 1.0, 2.0, 5.0, 0.8, 1.7};
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const auto instance = make(kind, 0.25, w);
        const auto alpha = optimal_allocation(instance);
        const auto t = finishing_times(instance, alpha);
        for (std::size_t i = 1; i < t.size(); ++i) {
            EXPECT_NEAR(t[i], t[0], 1e-10) << to_string(kind) << " i=" << i;
        }
    }
}

TEST(ClosedForm, ZeroCommunicationEqualsProportionalSplit) {
    // With z = 0, all kinds reduce to the classic "speed-proportional" rule
    // α_i ∝ 1/w_i.
    const std::vector<double> w{1.0, 2.0, 4.0};
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const auto alpha = optimal_allocation(make(kind, 0.0, w));
        const double scale = alpha[0] * w[0];
        for (std::size_t i = 0; i < w.size(); ++i) {
            EXPECT_NEAR(alpha[i] * w[i], scale, kTol) << to_string(kind);
        }
    }
}

TEST(ClosedForm, FasterProcessorGetsMoreLoadUnderEqualPosition) {
    // Homogeneous system except one fast processor: it must receive more.
    auto instance = make(NetworkKind::kNcpFE, 0.2, {2.0, 2.0, 1.0, 2.0});
    const auto alpha = optimal_allocation(instance);
    EXPECT_GT(alpha[2], alpha[3]);
}

TEST(ClosedForm, HomogeneousCpDecreasingShares) {
    // Identical w: earlier processors wait less on the bus so they get more.
    const auto alpha =
        optimal_allocation(make(NetworkKind::kCP, 0.5, {2.0, 2.0, 2.0, 2.0}));
    for (std::size_t i = 0; i + 1 < alpha.size(); ++i) {
        EXPECT_GT(alpha[i], alpha[i + 1]) << i;
    }
}

TEST(ClosedForm, ValidatesInput) {
    EXPECT_THROW(optimal_allocation(make(NetworkKind::kCP, 0.5, {})),
                 std::invalid_argument);
    EXPECT_THROW(optimal_allocation(make(NetworkKind::kCP, -1.0, {1.0})),
                 std::invalid_argument);
    EXPECT_THROW(optimal_allocation(make(NetworkKind::kCP, 0.5, {0.0})),
                 std::invalid_argument);
    EXPECT_THROW(optimal_allocation(make(NetworkKind::kCP, 0.5, {1.0, -2.0})),
                 std::invalid_argument);
}

// Parameterized equal-finish sweep across kinds and sizes.
class ClosedFormSweep
    : public ::testing::TestWithParam<std::tuple<NetworkKind, int, double>> {};

INSTANTIATE_TEST_SUITE_P(
    KindsSizesComm, ClosedFormSweep,
    ::testing::Combine(::testing::Values(NetworkKind::kCP, NetworkKind::kNcpFE,
                                         NetworkKind::kNcpNFE),
                       ::testing::Values(2, 3, 5, 8, 16, 33),
                       ::testing::Values(0.0, 0.1, 1.0, 5.0)));

TEST_P(ClosedFormSweep, EqualFinishAndFeasible) {
    const auto [kind, m, z] = GetParam();
    std::vector<double> w(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        w[static_cast<std::size_t>(i)] = 0.5 + 0.37 * i + 0.11 * ((i * 7) % 5);
    }
    const auto instance = make(kind, z, w);
    const auto alpha = optimal_allocation(instance);
    EXPECT_TRUE(is_feasible_allocation(alpha));
    const auto t = finishing_times(instance, alpha);
    const double t0 = t[0];
    for (double ti : t) EXPECT_NEAR(ti, t0, 1e-9 * std::max(1.0, t0));
}

}  // namespace
}  // namespace dlsbl::dlt
