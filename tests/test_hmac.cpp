#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace dlsbl::crypto {
namespace {

std::string mac_hex(const util::Bytes& key, const util::Bytes& msg) {
    const Digest d = hmac_sha256(key, msg);
    return util::to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
    const util::Bytes key(20, 0x0b);
    EXPECT_EQ(mac_hex(key, util::to_bytes("Hi There")),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
    EXPECT_EQ(mac_hex(util::to_bytes("Jefe"),
                      util::to_bytes("what do ya want for nothing?")),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
    const util::Bytes key(20, 0xaa);
    const util::Bytes msg(50, 0xdd);
    EXPECT_EQ(mac_hex(key, msg),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
    const util::Bytes key(131, 0xaa);
    EXPECT_EQ(mac_hex(key, util::to_bytes(
                               "Test Using Larger Than Block-Size Key - Hash Key First")),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
    const util::Bytes msg = util::to_bytes("message");
    const Digest a = hmac_sha256(util::to_bytes("key-a"), msg);
    const Digest b = hmac_sha256(util::to_bytes("key-b"), msg);
    EXPECT_NE(a, b);
}

TEST(Hmac, MessageSensitivity) {
    const util::Bytes key = util::to_bytes("key");
    EXPECT_NE(hmac_sha256(key, util::to_bytes("m1")),
              hmac_sha256(key, util::to_bytes("m2")));
}

TEST(Hmac, EmptyKeyAndMessageDefined) {
    const Digest d = hmac_sha256(util::Bytes{}, util::Bytes{});
    EXPECT_EQ(util::to_hex(std::span<const std::uint8_t>(d.data(), d.size())),
              "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

}  // namespace
}  // namespace dlsbl::crypto
