// Exact-rational verification of the DLT closed forms: Theorem 2.1 checked
// with equality, not tolerances.
#include <gtest/gtest.h>

#include <vector>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"
#include "util/rational.hpp"

namespace dlsbl::dlt {
namespace {

using util::Rational;

std::vector<Rational> rationals(std::initializer_list<const char*> texts) {
    std::vector<Rational> out;
    for (const char* t : texts) out.push_back(Rational::parse(t));
    return out;
}

void expect_exact_equal_finish(NetworkKind kind, const std::vector<Rational>& w,
                               const Rational& z) {
    const auto alpha = optimal_allocation_generic<Rational>(
        kind, std::span<const Rational>(w), z);
    // Allocation sums exactly to 1.
    Rational sum;
    for (const auto& a : alpha) {
        sum += a;
        EXPECT_GT(a, Rational{0});
    }
    EXPECT_EQ(sum, Rational{1});
    // All finishing times are *exactly* equal (Theorem 2.1).
    const auto t = finishing_times_generic<Rational>(kind, std::span<const Rational>(alpha),
                                                     std::span<const Rational>(w), z);
    for (std::size_t i = 1; i < t.size(); ++i) {
        EXPECT_EQ(t[i], t[0]) << to_string(kind) << " i=" << i;
    }
}

TEST(DltExact, EqualFinishExactCp) {
    expect_exact_equal_finish(NetworkKind::kCP,
                              rationals({"3/2", "2", "7/3", "5/4", "9/5"}),
                              Rational::parse("2/5"));
}

TEST(DltExact, EqualFinishExactNcpFe) {
    expect_exact_equal_finish(NetworkKind::kNcpFE,
                              rationals({"3/2", "2", "7/3", "5/4", "9/5"}),
                              Rational::parse("2/5"));
}

TEST(DltExact, EqualFinishExactNcpNfe) {
    expect_exact_equal_finish(NetworkKind::kNcpNFE,
                              rationals({"3/2", "2", "7/3", "5/4", "9/5"}),
                              Rational::parse("2/5"));
}

TEST(DltExact, ZeroCommunication) {
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        expect_exact_equal_finish(kind, rationals({"1", "2", "4", "8"}), Rational{0});
    }
}

TEST(DltExact, TwoProcessors) {
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        expect_exact_equal_finish(kind, rationals({"5/3", "7/2"}),
                                  Rational::parse("1/3"));
    }
}

TEST(DltExact, LargerSystemExact) {
    std::vector<Rational> w;
    for (int i = 1; i <= 10; ++i) {
        w.push_back(Rational{util::BigInt{2 * i + 1}, util::BigInt{i + 1}});
    }
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        expect_exact_equal_finish(kind, w, Rational::parse("3/7"));
    }
}

TEST(DltExact, MatchesDoublePath) {
    const auto w_exact = rationals({"3/2", "2", "7/3"});
    const Rational z_exact = Rational::parse("2/5");
    const auto alpha_exact = optimal_allocation_generic<Rational>(
        NetworkKind::kNcpFE, std::span<const Rational>(w_exact), z_exact);

    ProblemInstance instance;
    instance.kind = NetworkKind::kNcpFE;
    instance.z = 0.4;
    instance.w = {1.5, 2.0, 7.0 / 3.0};
    const auto alpha_double = optimal_allocation(instance);

    for (std::size_t i = 0; i < alpha_double.size(); ++i) {
        EXPECT_NEAR(alpha_double[i], alpha_exact[i].to_double(), 1e-12);
    }
}

TEST(DltExact, CpEqualsNcpFeAllocationExactly) {
    const auto w = rationals({"3/2", "2", "7/3", "5/4"});
    const Rational z = Rational::parse("2/5");
    const auto cp = optimal_allocation_generic<Rational>(NetworkKind::kCP,
                                                         std::span<const Rational>(w), z);
    const auto fe = optimal_allocation_generic<Rational>(NetworkKind::kNcpFE,
                                                         std::span<const Rational>(w), z);
    for (std::size_t i = 0; i < cp.size(); ++i) EXPECT_EQ(cp[i], fe[i]);
}

}  // namespace
}  // namespace dlsbl::dlt
