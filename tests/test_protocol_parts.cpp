// Unit tests for the protocol's building blocks: data blocks, the ledger,
// the meter bank, and the wire-message codecs.
#include <gtest/gtest.h>

#include "protocol/blocks.hpp"
#include "protocol/ledger.hpp"
#include "protocol/messages.hpp"
#include "protocol/meter.hpp"

namespace dlsbl::protocol {
namespace {

// ---- DataSet / blocks --------------------------------------------------------

TEST(Blocks, BlocksVerifyAgainstRoot) {
    DataSet data(42, 17);
    for (std::uint64_t id = 0; id < 17; ++id) {
        const Block block = data.block(id);
        EXPECT_TRUE(DataSet::verify_block(data.root(), block)) << id;
    }
}

TEST(Blocks, TamperedPayloadFails) {
    DataSet data(42, 8);
    Block block = data.block(3);
    block.payload_digest[0] ^= 0x01;
    EXPECT_FALSE(DataSet::verify_block(data.root(), block));
}

TEST(Blocks, MismatchedIdFails) {
    DataSet data(42, 8);
    Block block = data.block(3);
    block.id = 4;  // proof still binds index 3
    EXPECT_FALSE(DataSet::verify_block(data.root(), block));
}

TEST(Blocks, DifferentJobsDifferentRoots) {
    EXPECT_NE(DataSet(1, 16).root(), DataSet(2, 16).root());
}

TEST(Blocks, BlockSerializationRoundTrip) {
    DataSet data(7, 9);
    const Block block = data.block(5);
    const auto parsed = Block::deserialize(block.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->id, 5u);
    EXPECT_TRUE(DataSet::verify_block(data.root(), *parsed));
}

TEST(Blocks, OutOfRangeThrows) {
    DataSet data(7, 9);
    EXPECT_THROW(data.block(9), std::out_of_range);
    EXPECT_THROW(DataSet(7, 0), std::invalid_argument);
}

TEST(Blocks, LargestRemainderSumsExactly) {
    const std::vector<double> alpha{0.405, 0.27, 0.325};
    for (std::size_t total : {10u, 100u, 240u, 999u}) {
        const auto counts = DataSet::blocks_for_allocation(total, alpha);
        std::size_t sum = 0;
        for (std::size_t c : counts) sum += c;
        EXPECT_EQ(sum, total) << total;
    }
}

TEST(Blocks, LargestRemainderProportional) {
    const auto counts =
        DataSet::blocks_for_allocation(1000, {0.5, 0.3, 0.2});
    EXPECT_EQ(counts[0], 500u);
    EXPECT_EQ(counts[1], 300u);
    EXPECT_EQ(counts[2], 200u);
}

TEST(Blocks, LargestRemainderHandlesTinyShares) {
    const auto counts = DataSet::blocks_for_allocation(10, {0.96, 0.02, 0.02});
    std::size_t sum = 0;
    for (std::size_t c : counts) sum += c;
    EXPECT_EQ(sum, 10u);
    EXPECT_GE(counts[0], 9u);
}

// ---- Ledger --------------------------------------------------------------------

TEST(Ledger, TransfersConserveMoney) {
    Ledger ledger;
    ledger.open_account("A");
    ledger.open_account("B");
    ledger.transfer("A", "B", 5.0, "test");
    EXPECT_DOUBLE_EQ(ledger.balance("A"), -5.0);
    EXPECT_DOUBLE_EQ(ledger.balance("B"), 5.0);
    EXPECT_DOUBLE_EQ(ledger.total(), 0.0);
    EXPECT_EQ(ledger.history().size(), 1u);
    EXPECT_EQ(ledger.history()[0].memo, "test");
}

TEST(Ledger, UnknownAccountsThrow) {
    Ledger ledger;
    ledger.open_account("A");
    EXPECT_THROW(ledger.transfer("A", "ghost", 1.0), std::out_of_range);
    EXPECT_THROW((void)ledger.balance("ghost"), std::out_of_range);
    EXPECT_THROW(ledger.open_account("A"), std::invalid_argument);
    EXPECT_FALSE(ledger.has_account("ghost"));
}

// ---- MeterBank -------------------------------------------------------------------

TEST(Meter, RecordsElapsed) {
    MeterBank meters;
    meters.start("P1", 2.0);
    EXPECT_TRUE(meters.started("P1"));
    EXPECT_FALSE(meters.finished("P1"));
    meters.stop("P1", 5.5);
    EXPECT_TRUE(meters.finished("P1"));
    EXPECT_DOUBLE_EQ(meters.elapsed("P1"), 3.5);
    EXPECT_DOUBLE_EQ(meters.started_at("P1"), 2.0);
    EXPECT_EQ(meters.finished_count(), 1u);
}

TEST(Meter, MisuseThrows) {
    MeterBank meters;
    EXPECT_THROW(meters.stop("P1", 1.0), std::logic_error);
    EXPECT_THROW((void)meters.elapsed("P1"), std::logic_error);
    meters.start("P1", 0.0);
    EXPECT_THROW(meters.start("P1", 1.0), std::logic_error);
    meters.stop("P1", 1.0);
    EXPECT_THROW(meters.start("P1", 2.0), std::logic_error);  // meters are one-shot
}

// ---- message codecs ----------------------------------------------------------------

TEST(Messages, BidBodyRoundTrip) {
    BidBody body{7, "P3", 1.25};
    const auto parsed = BidBody::deserialize(body.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->job_id, 7u);
    EXPECT_EQ(parsed->processor, "P3");
    EXPECT_DOUBLE_EQ(parsed->bid, 1.25);
}

TEST(Messages, BidBodyRejectsGarbage) {
    EXPECT_FALSE(BidBody::deserialize(util::to_bytes("nonsense")).has_value());
    EXPECT_FALSE(BidBody::deserialize({}).has_value());
    // Wrong magic string.
    util::ByteWriter w;
    w.str("notbid");
    w.u64(1);
    w.str("P1");
    w.f64(1.0);
    EXPECT_FALSE(BidBody::deserialize(w.data()).has_value());
}

TEST(Messages, PaymentBodyRoundTrip) {
    PaymentBody body;
    body.job_id = 3;
    body.processor = "P2";
    body.payments = {0.5, -0.25, 1.75};
    const auto parsed = PaymentBody::deserialize(body.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->payments, body.payments);
}

TEST(Messages, MeterVectorRoundTrip) {
    MeterVectorBody body;
    body.job_id = 9;
    body.phis = {{"P1", 0.5}, {"P2", 0.75}};
    const auto parsed = MeterVectorBody::deserialize(body.serialize());
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->phis.size(), 2u);
    EXPECT_EQ(parsed->phis[1].first, "P2");
    EXPECT_DOUBLE_EQ(parsed->phis[1].second, 0.75);
}

TEST(Messages, AllocComplaintRoundTrip) {
    DataSet data(1, 8);
    AllocComplaintBody body;
    body.kind = AllocComplaintKind::kOverShipped;
    body.complainant = "P4";
    body.expected_blocks = 2;
    body.received_blocks = 4;
    body.held_blocks = {data.block(0), data.block(1)};
    const auto parsed = AllocComplaintBody::deserialize(body.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, AllocComplaintKind::kOverShipped);
    EXPECT_EQ(parsed->held_blocks.size(), 2u);
    EXPECT_TRUE(DataSet::verify_block(data.root(), parsed->held_blocks[1]));
}

TEST(Messages, AllocComplaintRejectsBadKind) {
    AllocComplaintBody body;
    body.kind = AllocComplaintKind::kShortShipped;
    body.complainant = "P1";
    auto wire = body.serialize();
    wire[wire.size() - wire.size()] = 0;  // clobber the kind byte (first byte)
    EXPECT_FALSE(AllocComplaintBody::deserialize(wire).has_value());
}

TEST(Messages, TerminateBodyRoundTrip) {
    TerminateBody body{"double-bid", {"P2", "P5"}};
    const auto parsed = TerminateBody::deserialize(body.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->reason, "double-bid");
    EXPECT_EQ(parsed->fined, (std::vector<std::string>{"P2", "P5"}));
}

TEST(Messages, TruncationRejectedEverywhere) {
    BidBody bid{1, "P1", 2.0};
    auto wire = bid.serialize();
    wire.pop_back();
    EXPECT_FALSE(BidBody::deserialize(wire).has_value());

    PaymentBody pay;
    pay.processor = "P1";
    pay.payments = {1.0, 2.0};
    auto pwire = pay.serialize();
    pwire.resize(pwire.size() - 3);
    EXPECT_FALSE(PaymentBody::deserialize(pwire).has_value());
}

}  // namespace
}  // namespace dlsbl::protocol
