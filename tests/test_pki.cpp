#include "crypto/pki.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace dlsbl::crypto {
namespace {

class PkiTest : public ::testing::TestWithParam<SignatureAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PkiTest,
                         ::testing::Values(SignatureAlgorithm::kMerkle,
                                           SignatureAlgorithm::kMerkleWots,
                                           SignatureAlgorithm::kFast),
                         [](const auto& param_info) -> std::string {
                             switch (param_info.param) {
                                 case SignatureAlgorithm::kMerkle: return "Merkle";
                                 case SignatureAlgorithm::kMerkleWots:
                                     return "MerkleWots";
                                 default: return "Fast";
                             }
                         });

TEST_P(PkiTest, SignedMessageVerifies) {
    Pki pki;
    auto signer = make_registered_signer(pki, "P1", 42, GetParam(), 2);
    const SignedMessage msg = sign_message(*signer, "P1", util::to_bytes("bid 1.5"));
    EXPECT_TRUE(msg.verify(pki));
}

TEST_P(PkiTest, TamperedPayloadFails) {
    Pki pki;
    auto signer = make_registered_signer(pki, "P1", 42, GetParam(), 2);
    SignedMessage msg = sign_message(*signer, "P1", util::to_bytes("bid 1.5"));
    msg.payload[0] ^= 0x01;
    EXPECT_FALSE(msg.verify(pki));
}

TEST_P(PkiTest, ForgedSignerIdentityFails) {
    // P2 cannot pass off its signature as P1's (Lemma 5.2's premise: forging
    // is impossible, so framing an honest processor fails verification).
    Pki pki;
    auto p1 = make_registered_signer(pki, "P1", 1, GetParam(), 2);
    auto p2 = make_registered_signer(pki, "P2", 2, GetParam(), 2);
    SignedMessage msg = sign_message(*p2, "P2", util::to_bytes("inconsistent bid"));
    msg.signer = "P1";  // framing attempt
    EXPECT_FALSE(msg.verify(pki));
}

TEST_P(PkiTest, UnregisteredIdentityFails) {
    Pki pki;
    auto signer = make_registered_signer(pki, "P1", 1, GetParam(), 2);
    SignedMessage msg = sign_message(*signer, "P1", util::to_bytes("m"));
    msg.signer = "ghost";
    EXPECT_FALSE(msg.verify(pki));
}

TEST_P(PkiTest, SerializationRoundTrip) {
    Pki pki;
    auto signer = make_registered_signer(pki, "P7", 9, GetParam(), 2);
    const SignedMessage msg = sign_message(*signer, "P7", util::to_bytes("payload"));
    const auto parsed = SignedMessage::deserialize(msg.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->signer, "P7");
    EXPECT_TRUE(parsed->verify(pki));
}

TEST(Pki, DuplicateRegistrationThrows) {
    Pki pki;
    auto signer = make_registered_signer(pki, "P1", 1, SignatureAlgorithm::kFast);
    EXPECT_THROW(make_registered_signer(pki, "P1", 2, SignatureAlgorithm::kFast),
                 std::invalid_argument);
}

TEST(Pki, LookupUnknownThrows) {
    Pki pki;
    EXPECT_FALSE(pki.is_registered("nobody"));
    EXPECT_THROW((void)pki.public_key_of("nobody"), std::out_of_range);
}

TEST(Pki, ParticipantCount) {
    Pki pki;
    EXPECT_EQ(pki.participant_count(), 0u);
    auto a = make_registered_signer(pki, "A", 1, SignatureAlgorithm::kFast);
    auto b = make_registered_signer(pki, "B", 2, SignatureAlgorithm::kFast);
    EXPECT_EQ(pki.participant_count(), 2u);
}

TEST(Pki, DistinctSeedsDistinctKeys) {
    Pki pki;
    auto a = make_registered_signer(pki, "A", 1, SignatureAlgorithm::kFast);
    auto b = make_registered_signer(pki, "B", 1, SignatureAlgorithm::kFast);
    EXPECT_NE(pki.public_key_of("A"), pki.public_key_of("B"));
}

TEST(Pki, CrossAlgorithmSignatureRejected) {
    Pki pki;
    auto merkle = make_registered_signer(pki, "M", 1, SignatureAlgorithm::kMerkle, 1);
    auto fast = make_registered_signer(pki, "F", 1, SignatureAlgorithm::kFast);
    const util::Bytes msg = util::to_bytes("m");
    // A fast MAC can never satisfy the Merkle verifier and vice versa.
    EXPECT_FALSE(pki.verify("M", msg, fast->sign(msg)));
    EXPECT_FALSE(pki.verify("F", msg, merkle->sign(msg)));
}

TEST(Pki, DeserializeRejectsTruncated) {
    Pki pki;
    auto signer = make_registered_signer(pki, "P1", 1, SignatureAlgorithm::kFast);
    util::Bytes wire = sign_message(*signer, "P1", util::to_bytes("m")).serialize();
    wire.pop_back();
    EXPECT_FALSE(SignedMessage::deserialize(wire).has_value());
}

}  // namespace
}  // namespace dlsbl::crypto
