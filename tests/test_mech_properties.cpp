#include "mech/properties.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dlsbl::mech {
namespace {

class MechPropertyTest : public ::testing::TestWithParam<dlt::NetworkKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, MechPropertyTest,
                         ::testing::Values(dlt::NetworkKind::kCP,
                                           dlt::NetworkKind::kNcpFE,
                                           dlt::NetworkKind::kNcpNFE),
                         [](const auto& param_info) -> std::string {
                             switch (param_info.param) {
                                 case dlt::NetworkKind::kCP: return "CP";
                                 case dlt::NetworkKind::kNcpFE: return "NcpFE";
                                 default: return "NcpNFE";
                             }
                         });

TEST_P(MechPropertyTest, StrategyproofnessHoldsOnRandomInstances) {
    util::Xoshiro256 rng{2026};
    const auto report = check_strategyproofness(GetParam(), 40, 6, rng);
    EXPECT_EQ(report.violations, 0u) << "worst gain " << report.worst_gain;
    EXPECT_EQ(report.instances, 40u);
    EXPECT_GT(report.agent_sweeps, 0u);
}

TEST_P(MechPropertyTest, VoluntaryParticipationHolds) {
    util::Xoshiro256 rng{77};
    const auto report = check_voluntary_participation(GetParam(), 200, 8, rng);
    EXPECT_EQ(report.violations, 0u);
    EXPECT_GE(report.min_utility, -1e-9);
    EXPECT_GT(report.agents, 0u);
}

TEST_P(MechPropertyTest, UtilityCurvePeaksAtTruthfulBid) {
    util::Xoshiro256 rng{11};
    const auto instance = random_instance(GetParam(), 4, rng);
    const std::vector<double> factors{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0};
    for (std::size_t i = 0; i < instance.w.size(); ++i) {
        const auto curve =
            utility_vs_bid(GetParam(), instance.z, instance.w, i, factors);
        ASSERT_EQ(curve.size(), factors.size());
        const auto best = std::max_element(
            curve.begin(), curve.end(),
            [](const auto& a, const auto& b) { return a.best_utility < b.best_utility; });
        EXPECT_DOUBLE_EQ(best->bid_factor, 1.0) << "agent " << i;
    }
}

TEST(MechProperties, RandomInstanceRespectsBounds) {
    util::Xoshiro256 rng{5};
    for (int trial = 0; trial < 100; ++trial) {
        const auto instance = random_instance(dlt::NetworkKind::kNcpFE, 5, rng);
        EXPECT_EQ(instance.w.size(), 5u);
        EXPECT_GE(instance.z, 0.05);
        EXPECT_LE(instance.z, 2.0);
        for (double wi : instance.w) {
            EXPECT_GE(wi, 0.5);
            EXPECT_LE(wi, 8.0);
        }
    }
}

TEST(MechProperties, UnderbidWithForcedTrueExecutionLoses) {
    // The classic manipulation: claim to be faster to grab more load. With
    // verification the agent still runs at its true speed, so the realized
    // makespan grows and the bonus shrinks.
    const std::vector<double> w{2.0, 2.0, 2.0};
    const double z = 0.5;
    for (auto kind : {dlt::NetworkKind::kCP, dlt::NetworkKind::kNcpFE,
                      dlt::NetworkKind::kNcpNFE}) {
        const DlsBl truthful(kind, z, w);
        const double honest_u = truthful.utility_of(0, w[0]);
        std::vector<double> lie = w;
        lie[0] = 1.0;  // claims twice the speed
        const DlsBl lying(kind, z, lie);
        const double liar_u = lying.utility_of(0, w[0]);
        EXPECT_LT(liar_u, honest_u + 1e-12) << dlt::to_string(kind);
    }
}

TEST(MechProperties, OverbidLosesLoadAndUtility) {
    const std::vector<double> w{2.0, 2.0, 2.0};
    const double z = 0.5;
    for (auto kind : {dlt::NetworkKind::kCP, dlt::NetworkKind::kNcpFE,
                      dlt::NetworkKind::kNcpNFE}) {
        const DlsBl truthful(kind, z, w);
        const double honest_u = truthful.utility_of(1, w[1]);
        std::vector<double> lie = w;
        lie[1] = 4.0;
        const DlsBl lying(kind, z, lie);
        // The overbidder may execute anywhere in [w, b]; neither helps.
        for (double exec : {2.0, 3.0, 4.0}) {
            EXPECT_LT(lying.utility_of(1, exec), honest_u + 1e-12)
                << dlt::to_string(kind) << " exec=" << exec;
        }
    }
}

}  // namespace
}  // namespace dlsbl::mech
