#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace dlsbl::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Xoshiro256 a{12345}, b{12345};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Xoshiro256 a{1}, b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
    Xoshiro256 rng{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(2.0, 5.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanApproximatesHalf) {
    Xoshiro256 rng{99};
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
    Xoshiro256 rng{3};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniform_int(2, 6);
        EXPECT_GE(v, 2u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all of 2..6 hit in 1000 draws
}

TEST(Rng, NormalMoments) {
    Xoshiro256 rng{11};
    constexpr int kN = 100000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.normal(3.0, 2.0);
        sum += x;
        sumsq += x * x;
    }
    const double mean = sum / kN;
    const double var = sumsq / kN - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ShufflePreservesMultiset) {
    Xoshiro256 rng{5};
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
    Xoshiro256 rng{5};
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i) v[static_cast<std::size_t>(i)] = i;
    const auto original = v;
    rng.shuffle(v);
    EXPECT_NE(v, original);
}

TEST(Rng, SplitStreamsIndependent) {
    Xoshiro256 parent{17};
    Xoshiro256 child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent() == child()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitMix64KnownSequence) {
    // Reference values from the splitmix64 reference implementation with
    // seed 0 (first three outputs).
    std::uint64_t state = 0;
    EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafull);
    EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454full);
}

}  // namespace
}  // namespace dlsbl::util
