#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dlsbl::crypto {
namespace {

std::vector<Digest> make_leaves(std::size_t n) {
    std::vector<Digest> leaves;
    leaves.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        leaves.push_back(Sha256::hash("leaf-" + std::to_string(i)));
    }
    return leaves;
}

TEST(Merkle, SingleLeafRootIsLeaf) {
    const auto leaves = make_leaves(1);
    MerkleTree tree(leaves);
    EXPECT_EQ(tree.root(), leaves[0]);
    const MerkleProof proof = tree.prove(0);
    EXPECT_TRUE(proof.siblings.empty());
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], proof));
}

TEST(Merkle, TwoLeaves) {
    const auto leaves = make_leaves(2);
    MerkleTree tree(leaves);
    EXPECT_EQ(tree.root(), Sha256::hash_pair(leaves[0], leaves[1]));
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], tree.prove(i)));
    }
}

TEST(Merkle, AllProofsVerifyPowerOfTwo) {
    const auto leaves = make_leaves(16);
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const MerkleProof proof = tree.prove(i);
        EXPECT_EQ(proof.siblings.size(), 4u);
        EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], proof));
    }
}

TEST(Merkle, NonPowerOfTwoPadding) {
    for (std::size_t n : {3u, 5u, 6u, 7u, 11u, 13u}) {
        const auto leaves = make_leaves(n);
        MerkleTree tree(leaves);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], tree.prove(i)))
                << "n=" << n << " i=" << i;
        }
    }
}

TEST(Merkle, WrongLeafFailsVerification) {
    const auto leaves = make_leaves(8);
    MerkleTree tree(leaves);
    const MerkleProof proof = tree.prove(3);
    EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[4], proof));
}

TEST(Merkle, TamperedProofFails) {
    const auto leaves = make_leaves(8);
    MerkleTree tree(leaves);
    MerkleProof proof = tree.prove(2);
    proof.siblings[1][0] ^= 0x01;
    EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[2], proof));
}

TEST(Merkle, WrongIndexFails) {
    const auto leaves = make_leaves(8);
    MerkleTree tree(leaves);
    MerkleProof proof = tree.prove(2);
    proof.leaf_index = 3;
    EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[2], proof));
}

TEST(Merkle, EmptyThrows) {
    EXPECT_THROW(MerkleTree(std::vector<Digest>{}), std::invalid_argument);
}

TEST(Merkle, ProveOutOfRangeThrows) {
    MerkleTree tree(make_leaves(4));
    EXPECT_THROW(tree.prove(4), std::out_of_range);
}

TEST(Merkle, ProofSerializationRoundTrip) {
    const auto leaves = make_leaves(8);
    MerkleTree tree(leaves);
    const MerkleProof proof = tree.prove(5);
    const auto parsed = MerkleProof::deserialize(proof.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->leaf_index, 5u);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[5], *parsed));
}

TEST(Merkle, DeserializeRejectsTruncated) {
    const auto leaves = make_leaves(8);
    MerkleTree tree(leaves);
    util::Bytes wire = tree.prove(1).serialize();
    wire.pop_back();
    EXPECT_FALSE(MerkleProof::deserialize(wire).has_value());
}

TEST(Merkle, RootChangesWithAnyLeaf) {
    auto leaves = make_leaves(8);
    const Digest original = MerkleTree(leaves).root();
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        auto mutated = leaves;
        mutated[i][0] ^= 0x01;
        EXPECT_NE(MerkleTree(mutated).root(), original) << i;
    }
}

}  // namespace
}  // namespace dlsbl::crypto
