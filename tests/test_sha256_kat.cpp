// FIPS 180-4 known-answer tests for SHA-256, run against EVERY compiled-in
// compression backend (scalar, and — where the CPU supports them — SHA-NI
// and AVX2). The multi-lane batch APIs are checked against the same
// vectors, so a broken SIMD kernel cannot hide behind the scalar path.
#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace dlsbl::crypto {
namespace {

std::string hex(const Digest& d) {
    return util::to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// Restores the dispatch-selected backend when a test finishes.
class BackendGuard {
 public:
    BackendGuard() : saved_(sha256_backend()) {}
    ~BackendGuard() { sha256_set_backend(saved_); }
    BackendGuard(const BackendGuard&) = delete;
    BackendGuard& operator=(const BackendGuard&) = delete;

 private:
    std::string saved_;
};

struct Kat {
    std::string message;
    const char* digest_hex;
};

// NIST FIPS 180-4 example vectors (one-block, multi-block, empty) plus the
// 112-byte four-block message from the NIST example suite.
const std::vector<Kat>& short_vectors() {
    static const std::vector<Kat> vectors = {
        {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        {"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        {"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
         "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
         "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
    };
    return vectors;
}

constexpr const char* kMillionAsDigest =
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";

TEST(Sha256Kat, BackendListIsSane) {
    const auto backends = sha256_available_backends();
    ASSERT_FALSE(backends.empty());
    EXPECT_EQ(backends.front(), "scalar");
    // The active backend must be one of the available ones.
    bool found = false;
    for (const auto& name : backends) {
        if (name == sha256_backend()) found = true;
    }
    EXPECT_TRUE(found) << "active: " << sha256_backend();
    // Unknown names are rejected without changing the selection.
    const std::string before{sha256_backend()};
    EXPECT_FALSE(sha256_set_backend("no-such-backend"));
    EXPECT_EQ(sha256_backend(), before);
}

TEST(Sha256Kat, ShortVectorsEveryBackend) {
    BackendGuard guard;
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));
        for (const auto& kat : short_vectors()) {
            EXPECT_EQ(hex(Sha256::hash(kat.message)), kat.digest_hex)
                << "backend=" << backend << " len=" << kat.message.size();
        }
    }
}

TEST(Sha256Kat, MillionAsEveryBackend) {
    BackendGuard guard;
    const std::string chunk(1000, 'a');
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));
        // Streamed in 1000-byte chunks (exercises buffered + bulk updates)...
        Sha256 streamed;
        for (int i = 0; i < 1000; ++i) streamed.update(chunk);
        EXPECT_EQ(hex(streamed.finalize()), kMillionAsDigest) << "backend=" << backend;
        // ...and in one shot.
        const std::string million(1000000, 'a');
        EXPECT_EQ(hex(Sha256::hash(million)), kMillionAsDigest) << "backend=" << backend;
    }
}

TEST(Sha256Kat, BatchApisMatchVectorsEveryBackend) {
    BackendGuard guard;
    const Digest a = Sha256::hash("left");
    const Digest b = Sha256::hash("right");
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));

        // hash32_many on a known 32-byte message: H(H("abc")).
        const Digest abc = Sha256::hash("abc");
        std::vector<Digest> in(70, abc);  // > one 64-lane batch
        std::vector<Digest> out(in.size());
        Sha256::hash32_many(in, out);
        for (const auto& d : out) {
            EXPECT_EQ(hex(d),
                      "4f8b42c22dd3729b519ba6f68d2da7cc5b2d606d05daed5ad5128cc03e6c6358")
                << "backend=" << backend;
        }

        // hash_pair_many against the scalar combiner.
        std::vector<Digest> pairs;
        for (int i = 0; i < 70; ++i) {
            pairs.push_back(a);
            pairs.push_back(b);
        }
        std::vector<Digest> combined(70);
        Sha256::hash_pair_many(pairs, combined);
        for (const auto& d : combined) {
            EXPECT_EQ(d, Sha256::hash_pair(a, b)) << "backend=" << backend;
        }
    }
}

TEST(Sha256Kat, HashManyMatchesVectors) {
    BackendGuard guard;
    for (const auto& backend : sha256_available_backends()) {
        ASSERT_TRUE(sha256_set_backend(backend));
        std::vector<util::Bytes> inputs;
        std::vector<const char*> expected;
        for (const auto& kat : short_vectors()) {
            inputs.push_back(util::to_bytes(kat.message));
            expected.push_back(kat.digest_hex);
        }
        std::vector<Digest> out(inputs.size());
        Sha256::hash_many(inputs, out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(hex(out[i]), expected[i])
                << "backend=" << backend << " index=" << i;
        }
    }
}

}  // namespace
}  // namespace dlsbl::crypto
