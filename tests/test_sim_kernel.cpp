#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dlsbl::sim {
namespace {

TEST(Kernel, RunsEventsInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(3.0, [&] { order.push_back(3); });
    sim.schedule_at(1.0, [&] { order.push_back(1); });
    sim.schedule_at(2.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Kernel, TiesBreakByScheduleOrder) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(1.0, [&, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Kernel, NestedScheduling) {
    Simulator sim;
    std::vector<double> times;
    sim.schedule_at(1.0, [&] {
        times.push_back(sim.now());
        sim.schedule_after(0.5, [&] { times.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Kernel, ZeroDelayFiresAfterCurrentEvent) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(1.0, [&] {
        order.push_back(1);
        sim.schedule_after(0.0, [&] { order.push_back(3); });
        order.push_back(2);
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, RejectsPastAndInvalid) {
    Simulator sim;
    sim.schedule_at(5.0, [] {});
    sim.run();
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_at(1.0 / 0.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_at(6.0, nullptr), std::invalid_argument);
}

TEST(Kernel, StepReturnsFalseWhenDrained) {
    Simulator sim;
    sim.schedule_at(0.0, [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(Kernel, RunawayGuardThrows) {
    Simulator sim;
    // A self-perpetuating event chain trips the budget.
    std::function<void()> loop = [&] { sim.schedule_after(0.001, loop); };
    sim.schedule_after(0.0, loop);
    EXPECT_THROW(sim.run(1000), std::runtime_error);
}

TEST(Kernel, EventsFiredCounts) {
    Simulator sim;
    for (int i = 0; i < 5; ++i) sim.schedule_at(static_cast<double>(i), [] {});
    sim.run();
    EXPECT_EQ(sim.events_fired(), 5u);
    EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace dlsbl::sim
