// Degenerate and boundary protocol scenarios.
#include <gtest/gtest.h>

#include "agents/zoo.hpp"
#include "dlt/finish_time.hpp"
#include "protocol/runner.hpp"

namespace dlsbl::protocol {
namespace {

ProtocolConfig base(dlt::NetworkKind kind, std::vector<double> w,
                    std::size_t blocks = 1200) {
    ProtocolConfig config;
    config.kind = kind;
    config.z = 0.05;
    config.true_w = std::move(w);
    config.block_count = blocks;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    return config;
}

TEST(EdgeCases, ExtremeHeterogeneityZeroBlockProcessor) {
    // P2 is ~500x slower: with only 10 blocks its share rounds to zero.
    // The run must still settle (the zero-share processor "executes" an
    // empty assignment and its w̃ falls back to its bid).
    auto config = base(dlt::NetworkKind::kNcpFE, {0.1, 50.0}, 10);
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early) << outcome.termination_reason;
    EXPECT_EQ(outcome.fined_count(), 0u);
    EXPECT_EQ(outcome.processors[0].blocks_assigned +
                  outcome.processors[1].blocks_assigned,
              10u);
    // Settled payments exist and the zero/near-zero processor didn't lose.
    for (const auto& p : outcome.processors) EXPECT_GE(p.utility(), -1e-6) << p.name;
}

TEST(EdgeCases, TwoProcessorDeviantsBothKinds) {
    for (auto kind : {dlt::NetworkKind::kNcpFE, dlt::NetworkKind::kNcpNFE}) {
        const std::size_t lo = dlt::load_origin_index(kind, 2);
        const std::size_t worker = 1 - lo;
        {
            auto config = base(kind, {1.0, 1.5});
            config.strategies.assign(2, agents::truthful());
            config.strategies[worker] = agents::false_short_claimer();
            const auto outcome = run_protocol(config);
            EXPECT_TRUE(outcome.processors[worker].fined) << dlt::to_string(kind);
        }
        {
            auto config = base(kind, {1.0, 1.5});
            config.strategies.assign(2, agents::truthful());
            config.strategies[lo] = agents::short_shipping_lo(0.5);
            const auto outcome = run_protocol(config);
            EXPECT_TRUE(outcome.processors[lo].fined) << dlt::to_string(kind);
        }
    }
}

TEST(EdgeCases, VerySmallCommunicationTime) {
    auto config = base(dlt::NetworkKind::kNcpNFE, {1.0, 1.2, 0.9});
    config.z = 1e-9;
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early);
    // With z -> 0 the optimum approaches proportional sharing.
    dlt::ProblemInstance instance{config.kind, config.z, config.true_w};
    EXPECT_NEAR(outcome.makespan, dlt::optimal_makespan(instance), 5e-3);
}

TEST(EdgeCases, SingleBlock) {
    // One block: everything lands on the processor with the largest share.
    auto config = base(dlt::NetworkKind::kNcpFE, {1.0, 2.0}, 1);
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_EQ(outcome.processors[0].blocks_assigned, 1u);
    EXPECT_EQ(outcome.processors[1].blocks_assigned, 0u);
}

TEST(EdgeCases, ManyProcessorsSmoke) {
    std::vector<double> w(48);
    for (std::size_t i = 0; i < w.size(); ++i) {
        w[i] = 1.0 + 0.02 * static_cast<double>(i % 11);
    }
    auto config = base(dlt::NetworkKind::kNcpFE, std::move(w), 48 * 8);
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_EQ(outcome.control_messages, 2u * 48 + 2);
}

TEST(EdgeCases, IdenticalProcessorsPositionOrdering) {
    // Identical machines are NOT symmetric: bus position matters. Earlier
    // NFE workers wait less for data, carry more load, and earn more.
    auto config = base(dlt::NetworkKind::kNcpNFE, {1.5, 1.5, 1.5, 1.5}, 4000);
    const auto outcome = run_protocol(config);
    ASSERT_FALSE(outcome.terminated_early);
    EXPECT_GT(outcome.processors[0].alpha, outcome.processors[1].alpha);
    EXPECT_GT(outcome.processors[1].alpha, outcome.processors[2].alpha);
    EXPECT_GT(outcome.processors[0].payment, outcome.processors[1].payment);
    for (const auto& p : outcome.processors) EXPECT_GT(p.payment, 0.0) << p.name;
}

TEST(EdgeCases, DeviantWithMinimalFine) {
    // Even a tiny (but positive) fine plus the lost payment keeps deviation
    // unprofitable for protocol cheats caught before payment.
    auto config = base(dlt::NetworkKind::kNcpFE, {1.0, 2.0, 1.5});
    config.fine_policy.safety_factor = 0.01;
    config.strategies.assign(3, agents::truthful());
    config.strategies[2] = agents::false_short_claimer();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.processors[2].fined);
    auto honest = config;
    honest.strategies[2] = agents::truthful();
    const auto honest_outcome = run_protocol(honest);
    EXPECT_LT(outcome.processors[2].utility(),
              honest_outcome.processors[2].utility());
}

TEST(EdgeCases, BothLatencyAndBandwidth) {
    auto config = base(dlt::NetworkKind::kNcpFE, {1.0, 2.0, 1.5});
    config.control_latency = 0.01;
    config.control_seconds_per_byte = 1e-6;
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early) << outcome.termination_reason;
    EXPECT_EQ(outcome.fined_count(), 0u);
}

TEST(EdgeCases, SlowExecutorExtremeStillSettles) {
    auto config = base(dlt::NetworkKind::kNcpFE, {1.0, 2.0, 1.5});
    config.strategies.assign(3, agents::truthful());
    config.strategies[1] = agents::slow_executor(10.0);
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_EQ(outcome.fined_count(), 0u);
    // The crawler's bonus collapses; its utility goes deeply negative
    // through the payment rule alone (no fine needed).
    EXPECT_LT(outcome.processors[1].utility(), 0.0);
}

}  // namespace
}  // namespace dlsbl::protocol
