// Linear (daisy-chain) network extension.
#include "dlt/linear.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dlsbl::dlt {
namespace {

LinearInstance make(LinearKind kind, double z, std::vector<double> w) {
    return LinearInstance{kind, z, std::move(w)};
}

TEST(Linear, Validation) {
    EXPECT_THROW(make(LinearKind::kLinearFE, 0.1, {}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(make(LinearKind::kLinearFE, -0.1, {1.0}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(make(LinearKind::kLinearFE, 0.1, {0.0}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(linear_finishing_times(make(LinearKind::kLinearFE, 0.1, {1.0, 2.0}),
                                        {1.0}),
                 std::invalid_argument);
}

TEST(Linear, SingleProcessor) {
    for (auto kind : {LinearKind::kLinearFE, LinearKind::kLinearNFE}) {
        const auto instance = make(kind, 0.5, {2.0});
        const auto alpha = linear_optimal_allocation(instance);
        EXPECT_DOUBLE_EQ(alpha[0], 1.0);
        EXPECT_DOUBLE_EQ(linear_optimal_makespan(instance), 2.0);
    }
}

TEST(Linear, TwoProcessorsFeKnownFormula) {
    // FE chain, m=2: α_1 w_1 = z α_2 + α_2 w_2 — identical to the bus pair.
    const double z = 0.5, w1 = 2.0, w2 = 3.0;
    const auto alpha =
        linear_optimal_allocation(make(LinearKind::kLinearFE, z, {w1, w2}));
    EXPECT_NEAR(alpha[0] * w1, alpha[1] * (z + w2), 1e-12);
    EXPECT_NEAR(alpha[0] + alpha[1], 1.0, 1e-12);
}

TEST(Linear, TwoProcessorsNfeLastPairRule) {
    // NFE chain, m=2: neither forwards after P_1's transfer, so
    // α_1 w_1 = α_2 w_2.
    const auto alpha =
        linear_optimal_allocation(make(LinearKind::kLinearNFE, 0.7, {2.0, 3.0}));
    EXPECT_NEAR(alpha[0] * 2.0, alpha[1] * 3.0, 1e-12);
}

TEST(Linear, EqualFinishAtOptimum) {
    for (auto kind : {LinearKind::kLinearFE, LinearKind::kLinearNFE}) {
        const auto instance = make(kind, 0.2, {1.0, 2.0, 1.4, 0.9, 1.7});
        const auto alpha = linear_optimal_allocation(instance);
        const auto t = linear_finishing_times(instance, alpha);
        for (std::size_t i = 1; i < t.size(); ++i) {
            EXPECT_NEAR(t[i], t[0], 1e-12) << to_string(kind) << " i=" << i;
        }
        double sum = 0.0;
        for (double a : alpha) {
            EXPECT_GT(a, 0.0);
            sum += a;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(Linear, ZeroCommReducesToProportional) {
    for (auto kind : {LinearKind::kLinearFE, LinearKind::kLinearNFE}) {
        const auto instance = make(kind, 0.0, {1.0, 2.0, 4.0});
        const auto alpha = linear_optimal_allocation(instance);
        const double scale = alpha[0] * 1.0;
        EXPECT_NEAR(alpha[1] * 2.0, scale, 1e-12);
        EXPECT_NEAR(alpha[2] * 4.0, scale, 1e-12);
    }
}

TEST(Linear, FeBeatsNfe) {
    // Overlapping compute with forwarding can only help.
    const std::vector<double> w{1.0, 1.3, 0.8, 1.6};
    for (double z : {0.05, 0.2, 0.4}) {
        const double fe = linear_optimal_makespan(make(LinearKind::kLinearFE, z, w));
        const double nfe = linear_optimal_makespan(make(LinearKind::kLinearNFE, z, w));
        EXPECT_LT(fe, nfe + 1e-12) << z;
    }
}

TEST(Linear, PerturbationsNeverBeatClosedFormModerateZ) {
    util::Xoshiro256 rng{88};
    for (auto kind : {LinearKind::kLinearFE, LinearKind::kLinearNFE}) {
        const auto instance = make(kind, 0.15, {1.0, 2.0, 1.4, 0.9});
        const auto opt = linear_optimal_allocation(instance);
        const double best = linear_makespan(instance, opt);
        for (int trial = 0; trial < 2000; ++trial) {
            LoadAllocation alpha(4);
            double sum = 0.0;
            for (std::size_t i = 0; i < alpha.size(); ++i) {
                alpha[i] = opt[i] * std::exp(rng.uniform(-0.25, 0.25));
                sum += alpha[i];
            }
            for (double& a : alpha) a /= sum;
            EXPECT_GE(linear_makespan(instance, alpha), best - 1e-9)
                << to_string(kind) << " trial " << trial;
        }
    }
}

TEST(Linear, ChainPositionPenalty) {
    // Homogeneous chain: downstream processors wait longer for data, so the
    // optimum gives them less load (FE variant).
    const auto alpha = linear_optimal_allocation(
        make(LinearKind::kLinearFE, 0.3, {1.0, 1.0, 1.0, 1.0}));
    for (std::size_t i = 0; i + 1 < alpha.size(); ++i) {
        EXPECT_GT(alpha[i], alpha[i + 1]) << i;
    }
}

TEST(Linear, ArrivalTimesMonotone) {
    const auto instance = make(LinearKind::kLinearFE, 0.3, {1.0, 1.0, 1.0});
    const LoadAllocation alpha{0.5, 0.3, 0.2};
    const auto t = linear_finishing_times(instance, alpha);
    // P3's data travels two hops: T_3 >= z*(α2+α3) + z*α3 + α3 w3.
    const double expected_min =
        0.3 * (0.3 + 0.2) + 0.3 * 0.2 + 0.2 * 1.0;
    EXPECT_NEAR(t[2], expected_min, 1e-12);
}

}  // namespace
}  // namespace dlsbl::dlt
