#include "crypto/wots.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace dlsbl::crypto {
namespace {

Digest seed(int n) { return Sha256::hash("wots-test-seed-" + std::to_string(n)); }

TEST(Wots, SignVerifyRoundTrip) {
    WotsKeyPair key(seed(1));
    const util::Bytes msg = util::to_bytes("bid: 1.25 from P3");
    const auto sig = key.sign(msg);
    EXPECT_TRUE(WotsKeyPair::verify(key.public_key(), msg, sig));
}

TEST(Wots, RejectsTamperedMessage) {
    WotsKeyPair key(seed(2));
    const util::Bytes msg = util::to_bytes("payment vector");
    const auto sig = key.sign(msg);
    util::Bytes tampered = msg;
    tampered[3] ^= 0x01;
    EXPECT_FALSE(WotsKeyPair::verify(key.public_key(), tampered, sig));
}

TEST(Wots, RejectsWrongKey) {
    WotsKeyPair alice(seed(3));
    WotsKeyPair bob(seed(4));
    const util::Bytes msg = util::to_bytes("m");
    EXPECT_FALSE(WotsKeyPair::verify(bob.public_key(), msg, alice.sign(msg)));
}

TEST(Wots, RejectsTamperedSignature) {
    WotsKeyPair key(seed(5));
    const util::Bytes msg = util::to_bytes("allocation");
    auto sig = key.sign(msg);
    sig.values[13][0] ^= 0xff;
    EXPECT_FALSE(WotsKeyPair::verify(key.public_key(), msg, sig));
}

TEST(Wots, ChecksumBlocksDigitIncreaseForgery) {
    // The classic WOTS attack without a checksum: advance a revealed chain
    // value by one hash to forge a signature for a digest with that digit
    // incremented. The checksum chains must make this fail.
    WotsKeyPair key(seed(6));
    const util::Bytes msg = util::to_bytes("original message");
    auto sig = key.sign(msg);
    // Advance every value by one step — the forged values correspond to all
    // digits+1, whose checksum differs; verification must fail.
    for (auto& v : sig.values) {
        v = Sha256::hash(std::span<const std::uint8_t>(v.data(), v.size()));
    }
    EXPECT_FALSE(WotsKeyPair::verify(key.public_key(), msg, sig));
}

TEST(Wots, DeterministicFromSeed) {
    WotsKeyPair a(seed(7)), b(seed(7)), c(seed(8));
    EXPECT_EQ(a.public_key(), b.public_key());
    EXPECT_NE(a.public_key(), c.public_key());
}

TEST(Wots, SerializationRoundTrip) {
    WotsKeyPair key(seed(9));
    const util::Bytes msg = util::to_bytes("wire");
    const auto sig = key.sign(msg);
    const util::Bytes wire = sig.serialize();
    EXPECT_EQ(wire.size(), WotsKeyPair::kChains * 32);
    const auto parsed = WotsKeyPair::Signature::deserialize(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(WotsKeyPair::verify(key.public_key(), msg, *parsed));
    EXPECT_FALSE(WotsKeyPair::Signature::deserialize(util::Bytes(10, 0)).has_value());
}

TEST(Wots, SignatureMuchSmallerThanLamport) {
    EXPECT_LT(WotsKeyPair::kChains * 32, 2 * 256 * 32 / 7);  // < 1/7 the size
}

TEST(Wots, ManyMessages) {
    // One-time keys, but signing different messages with different keys must
    // all verify (exercise many digit patterns).
    for (int i = 0; i < 20; ++i) {
        WotsKeyPair key(seed(100 + i));
        const util::Bytes msg = util::to_bytes("message #" + std::to_string(i));
        EXPECT_TRUE(WotsKeyPair::verify(key.public_key(), msg, key.sign(msg))) << i;
    }
}

TEST(Wots, EmptyMessage) {
    WotsKeyPair key(seed(10));
    const util::Bytes empty;
    EXPECT_TRUE(WotsKeyPair::verify(key.public_key(), empty, key.sign(empty)));
}

}  // namespace
}  // namespace dlsbl::crypto
