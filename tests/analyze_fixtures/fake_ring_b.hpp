// Analyzer fixture (never compiled): the other half of the include cycle
// with fake_ring_a.hpp.
#pragma once
#include "obs/fake_ring_a.hpp"

inline int ring_b() { return 2; }
