// Analyzer fixture (never compiled): the good twin of bad_dispatch.cpp —
// every FakeMsg enumerator is either handled or explicitly ignored.
// Expected: zero dispatch-exhaustiveness findings.
enum class FakeMsg : unsigned char {
    kPing = 1,
    kPong = 2,
    kQuit = 3,
};

struct FakeDispatcher {
    template <typename H>
    void on(FakeMsg type, H handler) {
        (void)type;
        (void)handler;
    }
    void ignore(FakeMsg type) { (void)type; }
};

void wire_handlers(FakeDispatcher& d) {
    d.on(FakeMsg::kPing, 1);
    d.ignore(FakeMsg::kPong);
    d.on(FakeMsg::kQuit, 2);
}
