// Analyzer fixture (never compiled): the good twin of bad_lockorder.cpp.
// Both functions take A::mu_ before B::mu_ (consistent global order), and
// the same-class pair goes through one std::scoped_lock (std::lock
// ordering makes the pair atomic). Expected: zero lock-order findings.
#include <mutex>

struct A {
    std::mutex mu_;
};
struct B {
    std::mutex mu_;
};

void transfer_ab(A& a, B& b) {
    const std::lock_guard<std::mutex> la(a.mu_);
    const std::lock_guard<std::mutex> lb(b.mu_);
}

void audit_ab(A& a, B& b) {
    const std::lock_guard<std::mutex> la(a.mu_);
    const std::lock_guard<std::mutex> lb(b.mu_);
}

struct Ledger {
    std::mutex table_mu_;
    void merge(const Ledger& other);
};

void Ledger::merge(const Ledger& other) {
    const std::scoped_lock both(other.table_mu_, table_mu_);
}
