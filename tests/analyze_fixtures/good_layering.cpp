// Analyzer fixture (never compiled): the good twin of bad_layering.cpp.
// Injected as src/protocol/uses_wire.cpp — protocol including a protocol
// header is self-dependence, always allowed; zero layering findings.
#include "protocol/fake_wire.hpp"

int protocol_uses_wire() { return fake_wire_version(); }
