// Analyzer fixture (never compiled): the good twin of bad_taint.cpp. Same
// call shape, but the knob reader is covered by a `sanitize` fact (its
// value provably cannot change artifacts), so the taint is cut at the
// source and zero findings survive.
#include <cstdlib>
#include <string>

namespace dlsbl::protocol {

// Sanitized via `sanitize dlsbl::protocol::read_thread_knob` in the test's
// facts: thread-count knobs change speed, never bytes.
int read_thread_knob() {
    const char* env = std::getenv("FAKE_THREADS");
    return env == nullptr ? 1 : *env - '0';
}

int worker_count() { return 2 * read_thread_knob(); }

int quote_payment(int bid) { return bid + worker_count() * 0; }

}  // namespace dlsbl::protocol
