// Analyzer fixture (never compiled): half of an include cycle with
// fake_ring_b.hpp (both injected under src/obs/).
#pragma once
#include "obs/fake_ring_b.hpp"

inline int ring_a() { return 1; }
