// Analyzer fixture (never compiled): injected as src/util/wallclock.cpp.
// util is the bottom of the declared module DAG and may depend on nothing,
// so this include of a protocol header is a layering-dag finding; the pair
// of headers below it (fake_ring_a/b) include each other, which is an
// include-cycle finding.
#include "protocol/fake_wire.hpp"

int util_breaks_layering() { return 1; }
