// Analyzer fixture (never compiled): injected as src/protocol/fake_wire.hpp
// — the layering-dag target bad_layering.cpp illegally includes.
#pragma once

inline int fake_wire_version() { return 3; }
