// Analyzer fixture (never compiled): two lock-order defects.
//   1. transfer_ab locks A::mu_ then B::mu_; transfer_ba locks B::mu_ then
//      A::mu_ -> cycle A::mu_ -> B::mu_ -> A::mu_.
//   2. Ledger::merge locks other.table_mu_ then table_mu_ sequentially:
//      same-class double acquisition (the defect src/obs/metrics.cpp had
//      before std::scoped_lock).
// Expected: one lock-order cycle finding + one second-acquisition finding.
#include <mutex>

struct A {
    std::mutex mu_;
};
struct B {
    std::mutex mu_;
};

void transfer_ab(A& a, B& b) {
    const std::lock_guard<std::mutex> la(a.mu_);
    const std::lock_guard<std::mutex> lb(b.mu_);
}

void transfer_ba(A& a, B& b) {
    const std::lock_guard<std::mutex> lb(b.mu_);
    const std::lock_guard<std::mutex> la(a.mu_);
}

struct Ledger {
    std::mutex table_mu_;
    void merge(const Ledger& other);
};

void Ledger::merge(const Ledger& other) {
    const std::lock_guard<std::mutex> theirs(other.table_mu_);
    const std::lock_guard<std::mutex> ours(table_mu_);
}
