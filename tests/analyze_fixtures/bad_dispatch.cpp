// Analyzer fixture (never compiled): a dispatcher registration site that
// misses one enumerator. FakeMsg has three kinds; wire_handlers registers
// kPing (handler) and kPong (explicit ignore) but forgets kQuit. Expected:
// one dispatch-exhaustiveness finding for FakeMsg::kQuit.
enum class FakeMsg : unsigned char {
    kPing = 1,
    kPong = 2,
    kQuit = 3,
};

struct FakeDispatcher {
    template <typename H>
    void on(FakeMsg type, H handler) {
        (void)type;
        (void)handler;
    }
    void ignore(FakeMsg type) { (void)type; }
};

void wire_handlers(FakeDispatcher& d) {
    d.on(FakeMsg::kPing, 1);
    d.ignore(FakeMsg::kPong);
    // FakeMsg::kQuit deliberately unregistered
}
