// Analyzer fixture (never compiled): determinism taint must flow from a
// getenv read through two call-graph hops into a protocol-artifact
// function when the intermediate is NOT sanitized. Injected into the test
// program as src/protocol/fake_pricing.cpp; expected: one taint-determinism
// finding on dlsbl::protocol::quote_payment with a three-hop chain.
#include <cstdlib>
#include <string>

namespace dlsbl::protocol {

int read_tuning_knob() {
    const char* env = std::getenv("FAKE_KNOB");  // taint seed
    return env == nullptr ? 1 : *env - '0';
}

int scaled_rate() { return 7 * read_tuning_knob(); }

// Protocol artifact: a payment quote must be a pure function of bids.
int quote_payment(int bid) { return bid * scaled_rate(); }

}  // namespace dlsbl::protocol
