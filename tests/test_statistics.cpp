#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dlsbl::util {
namespace {

TEST(Statistics, SummaryOfKnownSample) {
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    const Summary s = summarize(v);
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Statistics, SummaryEmpty) {
    const Summary s = summarize(std::vector<double>{});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Statistics, SummarySingleValue) {
    const Summary s = summarize(std::vector<double>{3.5});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 3.5);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Statistics, PercentileInterpolates) {
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 20.0);
}

TEST(Statistics, LinearFitExactLine) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(2.5 * x - 1.0);
    const LinearFit fit = linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Statistics, LinearFitNoisy) {
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> ys{0.1, 0.9, 2.2, 2.8, 4.1, 4.9};
    const LinearFit fit = linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 1.0, 0.05);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Statistics, LinearFitRejectsDegenerate) {
    EXPECT_THROW(linear_fit(std::vector<double>{1.0}, std::vector<double>{1.0}),
                 std::invalid_argument);
    EXPECT_THROW(linear_fit(std::vector<double>{1.0, 1.0}, std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(linear_fit(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0}),
                 std::invalid_argument);
}

TEST(Statistics, PowerLawFitRecoversExponent) {
    std::vector<double> xs, ys;
    for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        xs.push_back(x);
        ys.push_back(3.0 * x * x);  // y = 3 x^2
    }
    const LinearFit fit = power_law_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 1e-10);
    EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(Statistics, PowerLawFitRejectsNonPositive) {
    EXPECT_THROW(power_law_fit(std::vector<double>{1.0, -2.0},
                               std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(power_law_fit(std::vector<double>{1.0, 2.0},
                               std::vector<double>{0.0, 2.0}),
                 std::invalid_argument);
}

TEST(Statistics, RelativeSpread) {
    EXPECT_DOUBLE_EQ(relative_spread(std::vector<double>{5.0, 5.0, 5.0}), 0.0);
    EXPECT_DOUBLE_EQ(relative_spread(std::vector<double>{4.0, 6.0}), 0.4);
    EXPECT_DOUBLE_EQ(relative_spread(std::vector<double>{1.0}), 0.0);
}

}  // namespace
}  // namespace dlsbl::util
