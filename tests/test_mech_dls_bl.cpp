#include "mech/dls_bl.hpp"

#include <gtest/gtest.h>

#include "dlt/finish_time.hpp"

namespace dlsbl::mech {
namespace {

TEST(DlsBl, RequiresTwoProcessors) {
    EXPECT_THROW(DlsBl(dlt::NetworkKind::kNcpFE, 0.5, {1.0}), std::invalid_argument);
}

TEST(DlsBl, AllocationMatchesDlt) {
    const std::vector<double> bids{1.0, 2.0, 3.0};
    const DlsBl mechanism(dlt::NetworkKind::kNcpFE, 0.5, bids);
    dlt::ProblemInstance instance;
    instance.kind = dlt::NetworkKind::kNcpFE;
    instance.z = 0.5;
    instance.w = bids;
    const auto expected = dlt::optimal_allocation(instance);
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_DOUBLE_EQ(mechanism.allocation()[i], expected[i]);
    }
}

TEST(DlsBl, CompensationReimbursesCost) {
    const std::vector<double> bids{1.0, 2.0, 3.0};
    const DlsBl mechanism(dlt::NetworkKind::kNcpFE, 0.5, bids);
    const auto breakdown = mechanism.payments(std::span<const double>(bids));
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_DOUBLE_EQ(breakdown.compensation[i],
                         mechanism.allocation()[i] * bids[i]);
    }
}

TEST(DlsBl, UtilityEqualsBonus) {
    // U_i = Q_i + V_i = C_i + B_i - α_i w̃_i = B_i.
    const std::vector<double> bids{2.0, 1.5, 2.5, 1.0};
    const DlsBl mechanism(dlt::NetworkKind::kNcpNFE, 0.3, bids);
    const auto breakdown = mechanism.payments(std::span<const double>(bids));
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_NEAR(breakdown.utility[i], breakdown.bonus[i], 1e-12);
    }
}

TEST(DlsBl, TruthfulBonusIsMarginalContribution) {
    // For a truthful agent executing as bid: B_i = T_{-i} - T(α(b), b) >= 0,
    // i.e. exactly its contribution to reducing the makespan.
    const std::vector<double> bids{1.0, 2.0, 3.0, 1.2};
    for (auto kind : {dlt::NetworkKind::kCP, dlt::NetworkKind::kNcpFE,
                      dlt::NetworkKind::kNcpNFE}) {
        const DlsBl mechanism(kind, 0.4, bids);
        const double full = mechanism.bid_makespan();
        for (std::size_t i = 0; i < bids.size(); ++i) {
            const double bonus = mechanism.bonus_of(i, bids[i]);
            EXPECT_NEAR(bonus, mechanism.exclusion_makespan(i) - full, 1e-12);
            EXPECT_GE(bonus, -1e-12) << dlt::to_string(kind) << " i=" << i;
        }
    }
}

TEST(DlsBl, SlowExecutionReducesBonus) {
    const std::vector<double> bids{1.0, 2.0, 3.0};
    const DlsBl mechanism(dlt::NetworkKind::kNcpFE, 0.5, bids);
    for (std::size_t i = 0; i < bids.size(); ++i) {
        const double honest = mechanism.bonus_of(i, bids[i]);
        const double slow = mechanism.bonus_of(i, bids[i] * 2.0);
        EXPECT_LT(slow, honest) << i;
    }
}

TEST(DlsBl, RealizedMakespanUsesExecutionValues) {
    const std::vector<double> bids{1.0, 2.0};
    const DlsBl mechanism(dlt::NetworkKind::kNcpFE, 0.5, bids);
    EXPECT_DOUBLE_EQ(mechanism.realized_makespan(std::span<const double>(bids)),
                     mechanism.bid_makespan());
    const std::vector<double> slow{2.0, 2.0};
    EXPECT_GT(mechanism.realized_makespan(std::span<const double>(slow)),
              mechanism.bid_makespan());
}

TEST(DlsBl, PaymentIsCompensationPlusBonus) {
    const std::vector<double> bids{1.1, 0.9, 2.2};
    const DlsBl mechanism(dlt::NetworkKind::kCP, 0.2, bids);
    const std::vector<double> exec{1.1, 1.4, 2.2};  // P2 executes slower
    const auto breakdown = mechanism.payments(std::span<const double>(exec));
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_NEAR(breakdown.payment[i],
                    breakdown.compensation[i] + breakdown.bonus[i], 1e-12);
    }
}

TEST(DlsBl, ExclusionMakespanMatchesSequencing) {
    const std::vector<double> bids{1.0, 2.0, 3.0};
    const DlsBl mechanism(dlt::NetworkKind::kNcpNFE, 0.5, bids);
    dlt::ProblemInstance instance;
    instance.kind = dlt::NetworkKind::kNcpNFE;
    instance.z = 0.5;
    instance.w = bids;
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_DOUBLE_EQ(mechanism.exclusion_makespan(i),
                         dlt::leave_one_out_makespan(instance, i));
    }
}

TEST(DlsBl, InputValidation) {
    const DlsBl mechanism(dlt::NetworkKind::kCP, 0.5, {1.0, 2.0});
    const std::vector<double> wrong_size{1.0};
    EXPECT_THROW(mechanism.payments(std::span<const double>(wrong_size)),
                 std::invalid_argument);
    EXPECT_THROW((void)mechanism.realized_makespan(std::span<const double>(wrong_size)),
                 std::invalid_argument);
    EXPECT_THROW((void)mechanism.exclusion_makespan(5), std::out_of_range);
}

TEST(DlsBl, VoluntaryParticipationSpot) {
    // Truthful agents never lose (Theorem 3.2): U_i = B_i >= 0.
    // (z = 0.6 <= w_m keeps the NFE instance in the full-participation
    // regime the theorem assumes.)
    const std::vector<double> bids{0.8, 3.0, 1.7, 2.2, 0.9};
    for (auto kind : {dlt::NetworkKind::kCP, dlt::NetworkKind::kNcpFE,
                      dlt::NetworkKind::kNcpNFE}) {
        const DlsBl mechanism(kind, 0.6, bids);
        const auto breakdown = mechanism.payments(std::span<const double>(bids));
        for (double u : breakdown.utility) EXPECT_GE(u, -1e-12);
    }
}

}  // namespace
}  // namespace dlsbl::mech
