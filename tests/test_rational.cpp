#include "util/rational.hpp"

#include <gtest/gtest.h>

namespace dlsbl::util {
namespace {

TEST(Rational, DefaultIsZero) {
    Rational r;
    EXPECT_TRUE(r.is_zero());
    EXPECT_EQ(r.to_string(), "0");
}

TEST(Rational, NormalizesOnConstruction) {
    Rational r{BigInt{6}, BigInt{8}};
    EXPECT_EQ(r.numerator().to_int64(), 3);
    EXPECT_EQ(r.denominator().to_int64(), 4);

    Rational neg{BigInt{3}, BigInt{-9}};
    EXPECT_EQ(neg.numerator().to_int64(), -1);
    EXPECT_EQ(neg.denominator().to_int64(), 3);

    Rational zero{BigInt{0}, BigInt{-5}};
    EXPECT_TRUE(zero.is_zero());
    EXPECT_EQ(zero.denominator().to_int64(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
    EXPECT_THROW((Rational{BigInt{1}, BigInt{0}}), std::domain_error);
}

TEST(Rational, Arithmetic) {
    Rational half = Rational::parse("1/2");
    Rational third = Rational::parse("1/3");
    EXPECT_EQ((half + third).to_string(), "5/6");
    EXPECT_EQ((half - third).to_string(), "1/6");
    EXPECT_EQ((half * third).to_string(), "1/6");
    EXPECT_EQ((half / third).to_string(), "3/2");
    EXPECT_EQ((-half).to_string(), "-1/2");
}

TEST(Rational, DivisionByZeroThrows) {
    EXPECT_THROW(Rational{1} / Rational{0}, std::domain_error);
    EXPECT_THROW(Rational{0}.reciprocal(), std::domain_error);
}

TEST(Rational, Comparison) {
    EXPECT_LT(Rational::parse("1/3"), Rational::parse("1/2"));
    EXPECT_GT(Rational::parse("-1/3"), Rational::parse("-1/2"));
    EXPECT_EQ(Rational::parse("2/4"), Rational::parse("1/2"));
}

TEST(Rational, FromDoubleIsExact) {
    EXPECT_EQ(Rational::from_double(0.5).to_string(), "1/2");
    EXPECT_EQ(Rational::from_double(0.25).to_string(), "1/4");
    EXPECT_EQ(Rational::from_double(3.0).to_string(), "3");
    EXPECT_EQ(Rational::from_double(-1.75).to_string(), "-7/4");
    // 0.1 is not exactly representable; round-trip through double must agree.
    const Rational tenth = Rational::from_double(0.1);
    EXPECT_DOUBLE_EQ(tenth.to_double(), 0.1);
    EXPECT_THROW(Rational::from_double(1.0 / 0.0), std::domain_error);
}

TEST(Rational, FieldAxiomsSpotChecks) {
    const Rational a = Rational::parse("7/12");
    const Rational b = Rational::parse("-5/9");
    const Rational c = Rational::parse("22/7");
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * a.reciprocal(), Rational{1});
    EXPECT_EQ(a + (-a), Rational{0});
}

TEST(Rational, ToDouble) {
    EXPECT_DOUBLE_EQ(Rational::parse("1/2").to_double(), 0.5);
    EXPECT_DOUBLE_EQ(Rational::parse("-3/8").to_double(), -0.375);
}

TEST(Rational, ParsePlainInteger) {
    EXPECT_EQ(Rational::parse("42").to_string(), "42");
    EXPECT_EQ(Rational::parse("-17").to_string(), "-17");
}

}  // namespace
}  // namespace dlsbl::util
