#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.hpp"

namespace dlsbl::crypto {
namespace {

std::string hash_hex(std::string_view text) {
    const Digest d = Sha256::hash(text);
    return util::to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// FIPS 180-4 / NIST example vectors.
TEST(Sha256, EmptyString) {
    EXPECT_EQ(hash_hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(hash_hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    const Digest d = h.finalize();
    EXPECT_EQ(util::to_hex(std::span<const std::uint8_t>(d.data(), d.size())),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    const std::string msg = "the quick brown fox jumps over the lazy dog";
    for (std::size_t split = 0; split <= msg.size(); ++split) {
        Sha256 h;
        h.update(std::string_view(msg).substr(0, split));
        h.update(std::string_view(msg).substr(split));
        EXPECT_EQ(h.finalize(), Sha256::hash(msg)) << "split at " << split;
    }
}

TEST(Sha256, BoundaryLengths) {
    // Messages straddling the 55/56/64-byte padding boundaries.
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
        const std::string msg(len, 'x');
        Sha256 incremental;
        for (char c : msg) {
            incremental.update(std::string_view(&c, 1));
        }
        EXPECT_EQ(incremental.finalize(), Sha256::hash(msg)) << "len " << len;
    }
}

TEST(Sha256, ResetAllowsReuse) {
    Sha256 h;
    h.update("garbage");
    (void)h.finalize();
    h.reset();
    h.update("abc");
    EXPECT_EQ(h.finalize(), Sha256::hash("abc"));
}

TEST(Sha256, HashPairIsConcatenation) {
    const Digest a = Sha256::hash("left");
    const Digest b = Sha256::hash("right");
    Sha256 manual;
    manual.update(std::span<const std::uint8_t>(a.data(), a.size()));
    manual.update(std::span<const std::uint8_t>(b.data(), b.size()));
    EXPECT_EQ(Sha256::hash_pair(a, b), manual.finalize());
    EXPECT_NE(Sha256::hash_pair(a, b), Sha256::hash_pair(b, a));
}

TEST(Sha256, AvalancheOnSingleBitFlip) {
    util::Bytes msg = util::to_bytes("divisible load scheduling");
    const Digest base = Sha256::hash(msg);
    msg[0] ^= 0x01;
    const Digest flipped = Sha256::hash(msg);
    int differing_bits = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::uint8_t x = base[i] ^ flipped[i];
        while (x != 0) {
            differing_bits += x & 1;
            x >>= 1;
        }
    }
    EXPECT_GT(differing_bits, 80);  // ~128 expected for 256 bits
}

}  // namespace
}  // namespace dlsbl::crypto
