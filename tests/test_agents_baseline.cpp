#include <gtest/gtest.h>

#include <set>

#include "agents/zoo.hpp"
#include "baseline/obedient.hpp"
#include "dlt/finish_time.hpp"

namespace dlsbl {
namespace {

// ---- agents zoo ----------------------------------------------------------------

TEST(AgentZoo, TruthfulIsCompliant) {
    const auto s = agents::truthful();
    EXPECT_FALSE(s.deviates_from_protocol());
    EXPECT_DOUBLE_EQ(s.bid_factor, 1.0);
    EXPECT_DOUBLE_EQ(s.exec_factor, 1.0);
    EXPECT_TRUE(s.report_deviations);
}

TEST(AgentZoo, MisreportersAreNotProtocolDeviants) {
    // Lying about w is handled by the payment rule, not by fines.
    EXPECT_FALSE(agents::underbidder().deviates_from_protocol());
    EXPECT_FALSE(agents::overbidder().deviates_from_protocol());
    EXPECT_FALSE(agents::slow_executor().deviates_from_protocol());
    EXPECT_FALSE(agents::masked_overbidder().deviates_from_protocol());
}

TEST(AgentZoo, AllListedDeviantsDeviate) {
    for (const auto& s : agents::all_deviants()) {
        EXPECT_TRUE(s.deviates_from_protocol()) << s.name;
    }
}

TEST(AgentZoo, SilentObserverCompliantButMute) {
    const auto s = agents::silent_observer();
    EXPECT_FALSE(s.deviates_from_protocol());
    EXPECT_FALSE(s.report_deviations);
}

TEST(AgentZoo, NamesAreUnique) {
    std::set<std::string> names;
    for (const auto& s : agents::all_deviants()) names.insert(s.name);
    EXPECT_EQ(names.size(), agents::all_deviants().size());
}

TEST(AgentZoo, MaskedOverbidderExecutesAsBid) {
    const auto s = agents::masked_overbidder(2.0);
    EXPECT_DOUBLE_EQ(s.bid_factor, 2.0);
    EXPECT_DOUBLE_EQ(s.exec_factor, 2.0);
}

// ---- obedient baseline -----------------------------------------------------------

TEST(Baseline, TruthfulReportsGiveZeroProfitAndOptimalMakespan) {
    const std::vector<double> w{1.0, 2.0, 1.5};
    const auto outcome =
        baseline::run_obedient(dlt::NetworkKind::kNcpFE, 0.25, w, w);
    for (double profit : outcome.profit) EXPECT_NEAR(profit, 0.0, 1e-12);
    EXPECT_NEAR(outcome.scheduled_makespan, outcome.realized_makespan, 1e-12);
}

TEST(Baseline, OverbiddingIsProfitableWithoutAMechanism) {
    // The headline motivation (§1): under the obedience assumption a liar
    // profits.
    const std::vector<double> w{1.0, 2.0, 1.5};
    const auto gain = baseline::best_manipulation(
        dlt::NetworkKind::kNcpFE, 0.25, w, 1, {0.5, 0.8, 1.2, 1.5, 2.0, 3.0});
    EXPECT_GT(gain.deviant_profit, gain.honest_profit + 1e-6);
    EXPECT_GT(gain.best_factor, 1.0);  // overbidding is the profitable lie
}

TEST(Baseline, LiesInflateRealizedMakespan) {
    const std::vector<double> w{1.0, 2.0, 1.5};
    std::vector<double> bids = w;
    bids[0] = 3.0;  // P1 claims to be slow
    const auto outcome =
        baseline::run_obedient(dlt::NetworkKind::kNcpNFE, 0.25, w, bids);
    dlt::ProblemInstance true_instance{dlt::NetworkKind::kNcpNFE, 0.25, w};
    EXPECT_GT(outcome.scheduled_makespan,
              dlt::optimal_makespan(true_instance) - 1e-12);
}

TEST(Baseline, UnderbiddingUnprofitableEvenHere) {
    // Claiming to be faster means being paid below cost — the lie that even
    // a naive scheduler punishes.
    const std::vector<double> w{1.0, 2.0, 1.5};
    auto bids = w;
    bids[1] = 1.0;
    const auto outcome =
        baseline::run_obedient(dlt::NetworkKind::kNcpFE, 0.25, w, bids);
    EXPECT_LT(outcome.profit[1], 0.0);
}

TEST(Baseline, InputValidation) {
    EXPECT_THROW(baseline::run_obedient(dlt::NetworkKind::kNcpFE, 0.25, {1.0},
                                        {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(baseline::best_manipulation(dlt::NetworkKind::kNcpFE, 0.25,
                                             {1.0, 2.0}, 5, {1.0}),
                 std::out_of_range);
}

TEST(Baseline, ProfitDecomposition) {
    const std::vector<double> w{1.0, 2.0};
    std::vector<double> bids{1.0, 4.0};
    const auto outcome =
        baseline::run_obedient(dlt::NetworkKind::kNcpFE, 0.5, w, bids);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(outcome.profit[i], outcome.paid[i] - outcome.true_cost[i], 1e-12);
        EXPECT_NEAR(outcome.paid[i], outcome.alpha[i] * bids[i], 1e-12);
    }
}

}  // namespace
}  // namespace dlsbl
