// Logger behaviour + byte-exact determinism of the simulated event trace.
#include <gtest/gtest.h>

#include "protocol/runner.hpp"
#include "util/logging.hpp"

namespace dlsbl {
namespace {

TEST(Logging, LevelsFilter) {
    auto& logger = util::Logger::instance();
    const auto saved = logger.level();
    logger.set_level(util::LogLevel::Off);
    // Nothing to assert about stderr portably; the calls must simply be safe
    // at every level.
    util::log_error("test", "e");
    util::log_warn("test", "w");
    util::log_info("test", "i");
    util::log_debug("test", "d");
    logger.set_level(util::LogLevel::Debug);
    util::log_debug("test", "visible");
    EXPECT_EQ(logger.level(), util::LogLevel::Debug);
    logger.set_level(saved);
}

TEST(TraceDeterminism, IdenticalRunsIdenticalTraces) {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpNFE;
    config.z = 0.3;
    config.true_w = {1.0, 2.0, 1.5};
    config.block_count = 900;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;

    auto capture = [&config] {
        std::string rendered;
        protocol::run_protocol(config, [&](const protocol::RunInternals& internals) {
            rendered = internals.context.network().trace().render();
        });
        return rendered;
    };
    const std::string a = capture();
    const std::string b = capture();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);  // byte-exact replay
}

TEST(TraceDeterminism, InstanceChangesTrace) {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpFE;
    config.z = 0.3;
    config.true_w = {1.0, 2.0, 1.5};
    config.block_count = 900;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;

    auto capture = [&config] {
        std::string rendered;
        protocol::run_protocol(config, [&](const protocol::RunInternals& internals) {
            rendered = internals.context.network().trace().render();
        });
        return rendered;
    };
    const std::string a = capture();
    // A different machine profile changes allocations, transfer sizes and
    // compute spans — the trace must reflect it. (A different *seed* alone
    // changes signed payload bytes but not timing, so traces stay equal.)
    config.true_w = {1.0, 2.0, 0.7};
    const std::string b = capture();
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dlsbl
