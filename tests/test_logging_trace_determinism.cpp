// Logger behaviour + byte-exact determinism of the simulated event trace
// and of the observability artifacts derived from it (JSONL event log,
// catapult export).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "obs/catapult.hpp"
#include "obs/event.hpp"
#include "obs/json.hpp"
#include "protocol/detail/run_internals.hpp"
#include "protocol/runner.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace dlsbl {
namespace {

TEST(Logging, LevelsFilter) {
    auto& logger = util::Logger::instance();
    const auto saved = logger.level();
    logger.set_level(util::LogLevel::Off);
    // Nothing to assert about stderr portably; the calls must simply be safe
    // at every level.
    util::log_error("test", "e");
    util::log_warn("test", "w");
    util::log_info("test", "i");
    util::log_debug("test", "d");
    logger.set_level(util::LogLevel::Debug);
    util::log_debug("test", "visible");
    EXPECT_EQ(logger.level(), util::LogLevel::Debug);
    logger.set_level(saved);
}

TEST(TraceDeterminism, IdenticalRunsIdenticalTraces) {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpNFE;
    config.z = 0.3;
    config.true_w = {1.0, 2.0, 1.5};
    config.block_count = 900;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;

    auto capture = [&config] {
        std::string rendered;
        protocol::run_protocol(config, [&](const protocol::RunInternals& internals) {
            rendered = internals.trace().render();
        });
        return rendered;
    };
    const std::string a = capture();
    const std::string b = capture();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);  // byte-exact replay
}

TEST(TraceDeterminism, InstanceChangesTrace) {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpFE;
    config.z = 0.3;
    config.true_w = {1.0, 2.0, 1.5};
    config.block_count = 900;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;

    auto capture = [&config] {
        std::string rendered;
        protocol::run_protocol(config, [&](const protocol::RunInternals& internals) {
            rendered = internals.trace().render();
        });
        return rendered;
    };
    const std::string a = capture();
    // A different machine profile changes allocations, transfer sizes and
    // compute spans — the trace must reflect it. (A different *seed* alone
    // changes signed payload bytes but not timing, so traces stay equal.)
    config.true_w = {1.0, 2.0, 0.7};
    const std::string b = capture();
    EXPECT_NE(a, b);
}

TEST(TraceDeterminism, IdenticalSeedsIdenticalJsonlAndCatapult) {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpFE;
    config.z = 0.25;
    config.true_w = {1.0, 2.0, 1.5};
    config.block_count = 600;
    config.seed = 7;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;

    auto capture = [&config] {
        auto& log = obs::EventLog::instance();
        log.reset();
        std::ostringstream jsonl;
        log.add_sink(std::make_shared<obs::JsonlSink>(jsonl));
        log.set_level(util::LogLevel::Debug);
        std::string catapult;
        protocol::run_protocol(config, [&](const protocol::RunInternals& internals) {
            catapult = obs::catapult_from_trace(internals.trace());
        });
        log.flush();
        log.reset();
        return std::make_pair(jsonl.str(), catapult);
    };
    const auto [jsonl_a, catapult_a] = capture();
    const auto [jsonl_b, catapult_b] = capture();
    EXPECT_FALSE(jsonl_a.empty());
    EXPECT_FALSE(catapult_a.empty());
    EXPECT_EQ(jsonl_a, jsonl_b);        // byte-identical event log
    EXPECT_EQ(catapult_a, catapult_b);  // byte-identical trace export
}

// Adversarial `detail` payloads — embedded quotes, backslashes, control
// characters, non-UTF8 bytes — must survive both the JSONL and the catapult
// emitters as valid JSON that decodes back to the original bytes.
TEST(TraceDeterminism, AdversarialDetailPayloadsStayValidJson) {
    const std::string handpicked[] = {
        "quote\" backslash\\ slash/",
        std::string("nul\0byte", 8),
        "newline\n tab\t return\r",
        "\x01\x02\x1f\x7f",
        "\xc3\xa9 utf8 then raw \xff\xfe",
        "{\"looks\":\"like json\"}",
    };
    for (const auto& payload : handpicked) {
        obs::Event event(util::LogLevel::Info, "fuzz", "detail");
        event.str("detail", payload);
        const auto doc = obs::json_parse(event.to_json());
        ASSERT_TRUE(doc.has_value()) << obs::json_escape(payload);
        EXPECT_EQ(doc->find("detail")->string, payload);

        sim::TraceRecorder trace;
        trace.record(0.0, sim::TraceKind::kNote, "P1", payload);
        trace.record(0.5, sim::TraceKind::kVerdict, "referee", payload);
        const auto exported = obs::json_parse(obs::catapult_from_trace(trace));
        ASSERT_TRUE(exported.has_value()) << obs::json_escape(payload);
    }

    // Fuzz: random byte strings through the Event path.
    util::Xoshiro256 rng{0xdecafu};
    for (int round = 0; round < 100; ++round) {
        std::string payload;
        const std::size_t length = rng.uniform_int(0, 48);
        for (std::size_t i = 0; i < length; ++i) {
            payload.push_back(static_cast<char>(rng.uniform_int(0, 255)));
        }
        obs::Event event(util::LogLevel::Info, "fuzz", "detail");
        event.str("detail", payload);
        const auto doc = obs::json_parse(event.to_json());
        ASSERT_TRUE(doc.has_value()) << "round " << round;
        EXPECT_EQ(doc->find("detail")->string, payload) << "round " << round;
    }
}

}  // namespace
}  // namespace dlsbl
