// Randomized differential verification of the DLT theory layer, in exact
// rational arithmetic: for >= 1000 seeded instances the closed forms
// (Algorithms 2.1/2.2, closed_form.hpp) must agree *exactly* with an
// independent Gaussian-elimination solve of the Theorem 2.1 equal-finish
// system (linear_solver.hpp), and every instance must satisfy the
// optimality (Thm 2.1) and sequencing (Thm 2.2) invariants.
//
// The instances are generated and checked through exec::RunExecutor, so the
// suite doubles as a soak test of the executor: each run's instance is a
// pure function of derive_seed(root, index) and the verdict vector is read
// back in submission order.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"
#include "dlt/linear_solver.hpp"
#include "dlt/types.hpp"
#include "exec/executor.hpp"
#include "util/rational.hpp"
#include "util/rng.hpp"

namespace dlsbl::dlt {
namespace {

using util::Rational;

constexpr std::size_t kInstances = 1024;
constexpr std::uint64_t kRootSeed = 0x2D17ull;

struct ExactInstance {
    NetworkKind kind = NetworkKind::kCP;
    std::vector<Rational> w;
    Rational z;
};

// Small random rationals keep the BigInt intermediates in the Gaussian
// elimination bounded while still hitting awkward ratios.
Rational random_rational(util::Xoshiro256& rng, std::uint64_t num_lo,
                         std::uint64_t num_hi, std::uint64_t den_hi) {
    const auto num = static_cast<std::int64_t>(rng.uniform_int(num_lo, num_hi));
    const auto den = static_cast<std::int64_t>(rng.uniform_int(1, den_hi));
    return Rational{util::BigInt{num}, util::BigInt{den}};
}

ExactInstance random_instance(util::Xoshiro256& rng) {
    static constexpr NetworkKind kKinds[] = {NetworkKind::kCP, NetworkKind::kNcpFE,
                                             NetworkKind::kNcpNFE};
    ExactInstance instance;
    instance.kind = kKinds[rng.uniform_int(0, 2)];
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(2, 7));
    instance.w.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        instance.w.push_back(random_rational(rng, 1, 24, 6));  // w_i in (0, 24]
    }
    // z < min_i w_i — the DLT participation condition the paper's theorems
    // assume (shipping a unit must beat computing it locally, otherwise the
    // bus-starved NFE load origin should receive extra load and the
    // equal-finish point stops being the strict optimum). z = 0 is legal.
    Rational w_min = instance.w[0];
    for (const auto& wi : instance.w) w_min = std::min(w_min, wi);
    const auto den = rng.uniform_int(2, 8);
    instance.z = w_min *
                 Rational{util::BigInt{static_cast<std::int64_t>(
                              rng.uniform_int(0, den - 1))},
                          util::BigInt{static_cast<std::int64_t>(den)}};
    return instance;
}

// Checks every invariant on one instance; returns "" on success or a
// human-readable description of the first violation.
std::string check_instance(const ExactInstance& instance, util::Xoshiro256& rng) {
    const std::size_t m = instance.w.size();
    const std::span<const Rational> w(instance.w);

    const auto closed = optimal_allocation_generic<Rational>(instance.kind, w, instance.z);
    const auto solved =
        optimal_allocation_by_solver_generic<Rational>(instance.kind, w, instance.z);

    std::ostringstream where;
    where << to_string(instance.kind) << " m=" << m << " z=" << instance.z.to_string();

    // Differential: two independent derivations, exact equality.
    for (std::size_t i = 0; i < m; ++i) {
        if (!(closed[i] == solved[i])) {
            return "closed form != linear solver at i=" + std::to_string(i) + " (" +
                   closed[i].to_string() + " vs " + solved[i].to_string() + ") [" +
                   where.str() + "]";
        }
    }

    // Feasibility: positive fractions summing to exactly 1.
    Rational sum;
    for (const auto& a : closed) {
        if (!(a > Rational{0})) return "non-positive fraction [" + where.str() + "]";
        sum += a;
    }
    if (!(sum == Rational{1})) return "fractions do not sum to 1 [" + where.str() + "]";

    // Theorem 2.1: all finishing times exactly equal at the optimum.
    const auto t = finishing_times_generic<Rational>(instance.kind,
                                                     std::span<const Rational>(closed), w,
                                                     instance.z);
    for (std::size_t i = 1; i < m; ++i) {
        if (!(t[i] == t[0])) {
            return "finishing times unequal at i=" + std::to_string(i) + " [" +
                   where.str() + "]";
        }
    }

    // Thm 2.1 optimality direction: shifting load between two processors
    // strictly worsens the makespan (the equal-finish point is the unique
    // minimiser, so any feasible perturbation must lose).
    {
        const std::size_t from = static_cast<std::size_t>(rng.uniform_int(0, m - 1));
        std::size_t to = static_cast<std::size_t>(rng.uniform_int(0, m - 2));
        if (to >= from) ++to;
        const Rational eps =
            closed[from] / Rational{static_cast<std::int64_t>(rng.uniform_int(2, 9))};
        auto perturbed = closed;
        perturbed[from] -= eps;
        perturbed[to] += eps;
        const Rational worse = makespan_generic<Rational>(
            instance.kind, std::span<const Rational>(perturbed), w, instance.z);
        if (!(worse > t[0])) {
            return "perturbed allocation does not worsen makespan [" + where.str() + "]";
        }
    }

    // Theorem 2.2: permuting the transmission order (LO pinned for the NCP
    // kinds — it physically holds the data) leaves the optimal makespan
    // exactly unchanged.
    {
        std::size_t fixed = m;  // index pinned in place; m = none
        if (instance.kind != NetworkKind::kCP) fixed = load_origin_index(instance.kind, m);
        std::vector<std::size_t> movable;
        for (std::size_t i = 0; i < m; ++i) {
            if (i != fixed) movable.push_back(i);
        }
        rng.shuffle(movable);
        std::vector<Rational> permuted(m);
        std::size_t next = 0;
        for (std::size_t i = 0; i < m; ++i) {
            permuted[i] = (i == fixed) ? instance.w[i] : instance.w[movable[next++]];
        }
        const auto alpha_perm = optimal_allocation_generic<Rational>(
            instance.kind, std::span<const Rational>(permuted), instance.z);
        const auto t_perm = finishing_times_generic<Rational>(
            instance.kind, std::span<const Rational>(alpha_perm),
            std::span<const Rational>(permuted), instance.z);
        if (!(t_perm[0] == t[0])) {
            return "permuted order changes optimal makespan (" + t_perm[0].to_string() +
                   " vs " + t[0].to_string() + ") [" + where.str() + "]";
        }
    }

    return {};
}

TEST(PropertyDlt, ClosedFormMatchesExactSolverOnRandomInstances) {
    exec::RunExecutor pool({.jobs = 8, .root_seed = kRootSeed});
    const auto verdicts = pool.map(kInstances, [](exec::RunSlot& slot) {
        auto rng = slot.rng();
        const auto instance = random_instance(rng);
        return check_instance(instance, rng);
    });
    ASSERT_EQ(verdicts.size(), kInstances);
    std::size_t failures = 0;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (!verdicts[i].empty() && failures++ < 5) {
            ADD_FAILURE() << "instance " << i
                          << " (seed=" << util::derive_seed(kRootSeed, i)
                          << "): " << verdicts[i];
        }
    }
    EXPECT_EQ(failures, 0u) << failures << " of " << kInstances
                            << " random instances violated an invariant";
}

TEST(PropertyDlt, VerdictsIndependentOfJobCount) {
    // The property sweep itself is a deterministic artifact: re-running it
    // serially must reproduce the parallel instances bit-for-bit.
    auto sample = [](std::size_t jobs) {
        exec::RunExecutor pool({.jobs = jobs, .root_seed = kRootSeed});
        return pool.map(64, [](exec::RunSlot& slot) {
            auto rng = slot.rng();
            const auto instance = random_instance(rng);
            std::string digest = to_string(instance.kind);
            digest += ':';
            digest += instance.z.to_string();
            for (const auto& wi : instance.w) {
                digest += ',';
                digest += wi.to_string();
            }
            return digest;
        });
    };
    EXPECT_EQ(sample(1), sample(8));
}

TEST(PropertyDlt, ExactSolverRejectsSingularSystems) {
    // Degenerate m x m system with a dependent row must throw, not return
    // garbage (first-nonzero pivoting has no magnitude fallback to hide it).
    std::vector<Rational> a{Rational{1}, Rational{2}, Rational{2}, Rational{4}};
    std::vector<Rational> b{Rational{1}, Rational{2}};
    EXPECT_THROW(solve_linear_system_generic<Rational>(a, b, 2), std::domain_error);
}

TEST(PropertyDlt, GenericSolverMatchesDoubleEntryPoint) {
    ProblemInstance instance;
    instance.kind = NetworkKind::kNcpNFE;
    instance.z = 0.375;  // exactly representable
    instance.w = {1.5, 2.25, 1.75, 0.875};
    const auto by_double = optimal_allocation_by_solver(instance);

    std::vector<Rational> w;
    for (double wi : instance.w) w.push_back(Rational::from_double(wi));
    const auto by_exact = optimal_allocation_by_solver_generic<Rational>(
        NetworkKind::kNcpNFE, std::span<const Rational>(w),
        Rational::from_double(instance.z));
    for (std::size_t i = 0; i < by_double.size(); ++i) {
        EXPECT_NEAR(by_double[i], by_exact[i].to_double(), 1e-12);
    }
}

}  // namespace
}  // namespace dlsbl::dlt
