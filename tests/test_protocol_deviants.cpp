// Deviation handling: every offense of §4 must be detected, fined, and
// strictly unprofitable (Lemmas 5.1/5.2, Theorem 5.1, Corollary 5.1).
#include "agents/zoo.hpp"
#include "protocol/detail/run_internals.hpp"
#include "protocol/dispatch.hpp"
#include "protocol/runner.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dlsbl::protocol {
namespace {

ProtocolConfig base_config(dlt::NetworkKind kind = dlt::NetworkKind::kNcpFE) {
    ProtocolConfig config;
    config.kind = kind;
    config.z = 0.25;
    config.true_w = {1.0, 2.0, 1.5, 0.8};
    config.block_count = 1200;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    config.strategies.assign(config.true_w.size(), agents::truthful());
    return config;
}

// ---- offense (i): inconsistent bids ----------------------------------------

TEST(Deviants, InconsistentBidderIsFinedAndRunTerminates) {
    auto config = base_config();
    config.strategies[2] = agents::inconsistent_bidder();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    // Caught right after bidding: the verdict lands while the load is being
    // allocated (the FE load origin may already have begun computing, so
    // the phase marker can read Allocating or Processing).
    EXPECT_LE(outcome.ended_in, Phase::kProcessing);
    EXPECT_GE(outcome.ended_in, Phase::kAllocating);
    EXPECT_TRUE(outcome.processor("P3").fined);
    EXPECT_EQ(outcome.fined_count(), 1u);
    // Termination rule: commenced non-deviants first receive α_i w̃_i (their
    // metered φ_i), then the remainder is split evenly (§4).
    double comp_sum = 0.0;
    for (const auto& p : outcome.processors) {
        if (p.name != "P3" && p.commenced_work) comp_sum += p.phi;
    }
    const double share = (outcome.fine_amount - comp_sum) / 3.0;
    for (const auto& p : outcome.processors) {
        if (p.name == "P3") continue;
        const double expected = (p.commenced_work ? p.phi : 0.0) + share;
        EXPECT_NEAR(p.rewards, expected, 1e-9) << p.name;
    }
}

TEST(Deviants, InconsistentBidderUtilityStrictlyNegative) {
    auto config = base_config();
    config.strategies[2] = agents::inconsistent_bidder();
    const auto outcome = run_protocol(config);
    const auto honest = run_protocol(base_config());
    EXPECT_LT(outcome.processor("P3").utility(), 0.0);
    EXPECT_LT(outcome.processor("P3").utility(), honest.processor("P3").utility());
}

// ---- offense (ii): incorrect load assignments -------------------------------

TEST(Deviants, ShortShippingLoFined) {
    auto config = base_config();
    config.strategies[0] = agents::short_shipping_lo();  // P1 is LO for NCP-FE
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P1").fined);
    EXPECT_EQ(outcome.fined_count(), 1u);
}

TEST(Deviants, OverShippingLoFined) {
    auto config = base_config();
    config.strategies[0] = agents::over_shipping_lo();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P1").fined);
}

TEST(Deviants, CorruptingLoFined) {
    auto config = base_config();
    config.strategies[0] = agents::corrupting_lo();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P1").fined);
    EXPECT_EQ(outcome.fined_count(), 1u);
}

TEST(Deviants, RefusingLoFined) {
    auto config = base_config();
    config.strategies[0] = agents::refusing_lo();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P1").fined);
}

TEST(Deviants, NfeLoDeviationsAlsoCaught) {
    // For NCP-NFE the load origin is P_m.
    auto config = base_config(dlt::NetworkKind::kNcpNFE);
    config.strategies[3] = agents::short_shipping_lo();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P4").fined);
}

// ---- offense (iii): payment-phase cheats ------------------------------------

TEST(Deviants, PaymentCheaterFinedButRunSettles) {
    auto config = base_config();
    config.strategies[1] = agents::payment_cheater();
    const auto outcome = run_protocol(config);
    // Work is complete; payments settle despite the fine.
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P2").fined);
    EXPECT_EQ(outcome.fined_count(), 1u);
    EXPECT_GT(outcome.user_paid, 0.0);
    // Correct processors share the collected fine: x·F/(m-x).
    for (const auto& p : outcome.processors) {
        if (p.name == "P2") continue;
        EXPECT_NEAR(p.rewards, outcome.fine_amount / 3.0, 1e-9) << p.name;
    }
}

TEST(Deviants, ContradictoryPayerFined) {
    auto config = base_config();
    config.strategies[3] = agents::contradictory_payer();
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P4").fined);
    EXPECT_EQ(outcome.fined_count(), 1u);
}

TEST(Deviants, PaymentCheaterStillPaidCorrectQ) {
    // The referee recomputes and settles the *correct* vector; the cheat
    // only adds a fine on top.
    auto config = base_config();
    config.strategies[1] = agents::payment_cheater();
    const auto cheat = run_protocol(config);
    const auto honest = run_protocol(base_config());
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(cheat.processors[i].payment, honest.processors[i].payment, 1e-9);
    }
}

// ---- offense (iv): manipulated bid vectors ----------------------------------

TEST(Deviants, BidVectorTampererFined) {
    auto config = base_config();
    config.strategies[2] = agents::bid_vector_tamperer();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P3").fined);
}

// ---- offense (v): unsubstantiated claims ------------------------------------

TEST(Deviants, FalseAccuserFined) {
    auto config = base_config();
    config.strategies[1] = agents::false_accuser();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P2").fined);
    EXPECT_EQ(outcome.fined_count(), 1u);
    // The falsely accused processor is NOT fined (Lemma 5.2).
    EXPECT_FALSE(outcome.processor("P1").fined);
}

TEST(Deviants, FalseShortClaimerFined) {
    auto config = base_config();
    config.strategies[2] = agents::false_short_claimer();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_TRUE(outcome.processor("P3").fined);
    EXPECT_FALSE(outcome.processor("P1").fined);  // the LO is innocent
}

// ---- Lemma 5.2 / Corollary 5.1 ------------------------------------------------

TEST(Deviants, HonestProcessorsNeverFined) {
    for (const auto& deviant : agents::worker_deviants()) {
        auto config = base_config();
        config.strategies[2] = deviant;
        const auto outcome = run_protocol(config);
        for (const auto& p : outcome.processors) {
            if (p.name == "P3") continue;
            EXPECT_FALSE(p.fined) << deviant.name << " framed " << p.name;
        }
    }
}

TEST(Deviants, NoRewardsWithoutACheater) {
    const auto outcome = run_protocol(base_config());
    for (const auto& p : outcome.processors) {
        EXPECT_DOUBLE_EQ(p.rewards, 0.0) << p.name;
    }
}

// ---- Theorem 5.1: compliance is utility-maximizing ----------------------------

TEST(Deviants, EveryWorkerDeviationStrictlyUnprofitable) {
    const auto honest = run_protocol(base_config());
    for (const auto& deviant : agents::worker_deviants()) {
        auto config = base_config();
        config.strategies[2] = deviant;
        const auto outcome = run_protocol(config);
        EXPECT_TRUE(outcome.processor("P3").fined) << deviant.name;
        EXPECT_LT(outcome.processor("P3").utility(),
                  honest.processor("P3").utility())
            << deviant.name;
    }
}

TEST(Deviants, EveryLoDeviationStrictlyUnprofitable) {
    const auto honest = run_protocol(base_config());
    for (const auto& deviant : agents::lo_deviants()) {
        auto config = base_config();
        config.strategies[0] = deviant;
        const auto outcome = run_protocol(config);
        EXPECT_TRUE(outcome.processor("P1").fined) << deviant.name;
        EXPECT_LT(outcome.processor("P1").utility(),
                  honest.processor("P1").utility())
            << deviant.name;
    }
}

// ---- monitoring incentives ----------------------------------------------------

TEST(Deviants, SilentObserversLetDeviationSlipButEarnNothing) {
    // If *nobody* reports, an inconsistent bid goes unpunished — showing why
    // the reward F/(m-1) matters. (The deviation still corrupts nothing
    // here because all nodes keep the first bid for the allocation.)
    auto config = base_config();
    config.strategies[2] = agents::inconsistent_bidder();
    for (std::size_t i = 0; i < 4; ++i) {
        if (i != 2) config.strategies[i] = agents::silent_observer();
    }
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.processor("P3").fined);
    for (const auto& p : outcome.processors) EXPECT_DOUBLE_EQ(p.rewards, 0.0);
}

TEST(Deviants, SingleReporterSufficesAndCollects) {
    auto config = base_config();
    config.strategies[2] = agents::inconsistent_bidder();
    config.strategies[1] = agents::silent_observer();
    config.strategies[3] = agents::silent_observer();
    // Only P1 monitors.
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.processor("P3").fined);
    // Rewards are split among all non-deviants regardless of who reported.
    EXPECT_GT(outcome.processor("P1").rewards, 0.0);
}

// ---- multiple simultaneous deviants -------------------------------------------

TEST(Deviants, TwoPaymentCheatersBothFined) {
    auto config = base_config();
    config.strategies[1] = agents::payment_cheater();
    config.strategies[3] = agents::payment_cheater();
    const auto outcome = run_protocol(config);
    EXPECT_TRUE(outcome.processor("P2").fined);
    EXPECT_TRUE(outcome.processor("P4").fined);
    EXPECT_EQ(outcome.fined_count(), 2u);
    // Pool 2F split between the 2 correct ones: each gets F.
    EXPECT_NEAR(outcome.processor("P1").rewards, outcome.fine_amount, 1e-9);
}

// ---- fine policy ---------------------------------------------------------------

TEST(Deviants, FixedFinePolicyOverridesBidDerived) {
    auto config = base_config();
    config.fine_policy.fixed_fine = 42.0;
    config.strategies[1] = agents::payment_cheater();
    const auto outcome = run_protocol(config);
    EXPECT_DOUBLE_EQ(outcome.fine_amount, 42.0);
    EXPECT_NEAR(outcome.processor("P2").fines, 42.0, 1e-12);
}

TEST(Deviants, BidDerivedFineHasOffEquilibriumInflationChannel) {
    // Documented wrinkle (EXPERIMENTS.md): with F tied to bids, an
    // overbidder inflates the fine pool — and hence the reward share it
    // collects — when a *different* processor is fined. A user-posted fixed
    // F removes the dominant (F-scaling) part of that channel; a small
    // residual remains because the termination redistribution itself is not
    // incentive-neutral off the equilibrium path (the paper claims nothing
    // about off-path redistribution incentives).
    auto config = base_config();
    config.strategies[3] = agents::false_short_claimer();  // someone else cheats

    auto overbid = config;
    overbid.strategies[1].bid_factor = 2.0;
    const double u_honest = run_protocol(config).processor("P2").utility();
    const double u_overbid = run_protocol(overbid).processor("P2").utility();
    const double gain_bid_derived = u_overbid - u_honest;
    EXPECT_GT(gain_bid_derived, 0.0);  // the channel exists...

    config.fine_policy.fixed_fine = 10.0;
    overbid.fine_policy.fixed_fine = 10.0;
    const double fixed_honest = run_protocol(config).processor("P2").utility();
    const double fixed_overbid = run_protocol(overbid).processor("P2").utility();
    const double gain_fixed = fixed_overbid - fixed_honest;
    // ...and the fixed policy removes the F-scaling component of it.
    EXPECT_LT(gain_fixed, 0.5 * gain_bid_derived);
}

TEST(Deviants, FineExceedsCompensationSum) {
    // The posted F must satisfy F >= Σ_j α_j w̃_j (§4 Bidding).
    auto config = base_config();
    config.strategies[1] = agents::payment_cheater();
    const auto outcome = run_protocol(config);
    double compensation_sum = 0.0;
    for (const auto& p : outcome.processors) compensation_sum += p.alpha * p.exec_rate;
    EXPECT_GE(outcome.fine_amount, compensation_sum);
}

// ---- dispatcher hygiene --------------------------------------------------------

TEST(Deviants, DeviantRunsNeverHitTheUnknownMessagePath) {
    // Every offense in the zoo abuses *known* message kinds; none may leak a
    // frame onto the dispatcher's unknown-type drop path. The drop counter
    // staying unregistered after every deviant run is what guarantees the
    // shared drop policy cannot perturb deviant-run artifacts — only truly
    // out-of-enum wire types (e.g. the junk spammer) ever reach it.
    auto expect_no_drops = [](ProtocolConfig config, const std::string& label) {
        std::string metrics;
        run_protocol(config, [&](const RunInternals& internals) {
            metrics = internals.context.metrics_registry().prometheus_text();
        });
        EXPECT_EQ(metrics.find(kUnknownMessagesMetric), std::string::npos) << label;
    };
    expect_no_drops(base_config(), "honest");
    const auto workers = agents::worker_deviants();
    for (const auto& deviant : workers) {
        auto config = base_config();
        config.strategies[2] = deviant;
        expect_no_drops(config, "worker:" + deviant.name);
    }
    for (const auto& deviant : agents::lo_deviants()) {
        auto config = base_config();
        config.strategies[0] = deviant;
        expect_no_drops(config, "lo:" + deviant.name);
    }
    // The junk spammer is the counterpoint: its frames DO land on the drop
    // path and must be counted there.
    auto config = base_config();
    config.strategies[1] = agents::junk_spammer(2);
    std::string metrics;
    run_protocol(config, [&](const RunInternals& internals) {
        metrics = internals.context.metrics_registry().prometheus_text();
    });
    EXPECT_NE(metrics.find(kUnknownMessagesMetric), std::string::npos);
}

}  // namespace
}  // namespace dlsbl::protocol
