// The star-network mechanism (the paper's future work) must inherit the
// DLS-BL properties: strategyproofness and voluntary participation, with a
// bid-independent activation order.
#include "mech/star_mechanism.hpp"

#include <gtest/gtest.h>

#include "mech/cp_auction.hpp"
#include "mech/dls_bl.hpp"
#include "util/rng.hpp"

namespace dlsbl::mech {
namespace {

TEST(StarMechanism, Validation) {
    EXPECT_THROW(StarMechanism({0.1}, {1.0}), std::invalid_argument);
    EXPECT_THROW(StarMechanism({0.1}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(StarMechanism({0.1, -0.1}, {1.0, 2.0}), std::invalid_argument);
    const StarMechanism mechanism({0.1, 0.2}, {1.0, 2.0});
    EXPECT_THROW((void)mechanism.exclusion_makespan(2), std::out_of_range);
    const std::vector<double> wrong{1.0};
    EXPECT_THROW((void)mechanism.payments(std::span<const double>(wrong)),
                 std::invalid_argument);
}

TEST(StarMechanism, HomogeneousLinksMatchBusDlsBl) {
    // Equal links: the star mechanism must reproduce DLS-BL on the CP bus.
    const std::vector<double> links(4, 0.3);
    const std::vector<double> bids{1.0, 2.0, 1.5, 0.8};
    const StarMechanism star(links, bids);
    const DlsBl bus(dlt::NetworkKind::kCP, 0.3, bids);
    // Same allocation — up to the bandwidth reorder, which is the identity
    // for equal links (stable sort).
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_NEAR(star.allocation()[i], bus.allocation()[i], 1e-12);
    }
    const auto star_pay = star.payments(std::span<const double>(bids));
    const auto bus_pay = bus.payments(std::span<const double>(bids));
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_NEAR(star_pay.payment[i], bus_pay.payment[i], 1e-9) << i;
    }
}

TEST(StarMechanism, TruthfulBonusesNonNegative) {
    util::Xoshiro256 rng{21};
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t m = 2 + trial % 5;
        std::vector<double> links(m), w(m);
        for (std::size_t i = 0; i < m; ++i) {
            links[i] = rng.uniform(0.05, 0.8);
            w[i] = rng.uniform(0.8, 5.0);
        }
        const StarMechanism mechanism(links, w);
        const auto breakdown = mechanism.payments(std::span<const double>(w));
        for (double u : breakdown.utility) {
            EXPECT_GE(u, -1e-9) << "trial " << trial;
        }
    }
}

TEST(StarMechanism, StrategyproofOnRandomInstances) {
    util::Xoshiro256 rng{77};
    const std::vector<double> factors{0.25, 0.5, 0.75, 0.9, 1.1, 1.5, 2.0, 4.0};
    std::size_t violations = 0;
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t m = 2 + trial % 5;
        std::vector<double> links(m), w(m);
        for (std::size_t i = 0; i < m; ++i) {
            links[i] = rng.uniform(0.05, 0.8);
            w[i] = rng.uniform(0.8, 5.0);
        }
        for (std::size_t agent = 0; agent < m; ++agent) {
            const StarMechanism truthful(links, w);
            const double honest = truthful.utility_of(agent, w[agent]);
            for (double factor : factors) {
                auto bids = w;
                bids[agent] = factor * w[agent];
                const StarMechanism lying(links, bids);
                // Deviator picks its best execution value in [w, max(w, b)].
                const double hi = std::max(w[agent], bids[agent]);
                for (int g = 0; g <= 8; ++g) {
                    const double exec = w[agent] + (hi - w[agent]) * g / 8.0;
                    if (lying.utility_of(agent, exec) > honest + 1e-9) ++violations;
                }
            }
        }
    }
    EXPECT_EQ(violations, 0u);
}

TEST(StarMechanism, OrderIsBidIndependent) {
    // Reporting a wildly different speed must not change the activation
    // order (it is fixed by the public link speeds), so the allocation
    // ordering cannot be gamed.
    const std::vector<double> links{0.5, 0.1, 0.3};
    const StarMechanism honest(links, {1.0, 1.0, 1.0});
    const StarMechanism skewed(links, {100.0, 1.0, 1.0});
    // P2 (fastest link) gets the largest share in both cases.
    EXPECT_GT(honest.allocation()[1], honest.allocation()[0]);
    EXPECT_GT(skewed.allocation()[1], skewed.allocation()[0]);
}

TEST(StarMechanism, SlowExecutionShrinksUtility) {
    const StarMechanism mechanism({0.1, 0.4, 0.2}, {1.0, 2.0, 1.5});
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_LT(mechanism.utility_of(i, 3.0), mechanism.utility_of(i, 1.0) + 1e-12);
    }
}

TEST(StarMechanism, PaymentDecomposition) {
    const std::vector<double> bids{1.2, 0.9, 2.0};
    const StarMechanism mechanism({0.2, 0.15, 0.35}, bids);
    const auto breakdown = mechanism.payments(std::span<const double>(bids));
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_NEAR(breakdown.payment[i],
                    breakdown.compensation[i] + breakdown.bonus[i], 1e-12);
        EXPECT_NEAR(breakdown.compensation[i], mechanism.allocation()[i] * bids[i],
                    1e-12);
    }
}

// CP auction runner sanity (the [9] mechanism, trusted control processor).
TEST(CpAuction, TruthfulRunMatchesDlsBl) {
    std::vector<CpAgent> agents{{1.0, 1.0, 1.0}, {2.0, 1.0, 1.0}, {1.5, 1.0, 1.0}};
    const auto outcome = run_cp_auction(0.4, agents);
    const DlsBl mechanism(dlt::NetworkKind::kCP, 0.4, {1.0, 2.0, 1.5});
    const std::vector<double> w{1.0, 2.0, 1.5};
    const auto expected = mechanism.payments(std::span<const double>(w));
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(outcome.breakdown.payment[i], expected.payment[i], 1e-12);
        EXPECT_GE(outcome.utility(i), -1e-12);
    }
    EXPECT_NEAR(outcome.makespan, mechanism.bid_makespan(), 1e-12);
}

TEST(CpAuction, CheatersCannotRunFasterThanHardware) {
    std::vector<CpAgent> agents{{1.0, 1.0, 0.1}, {2.0, 1.0, 1.0}};
    const auto outcome = run_cp_auction(0.4, agents);
    EXPECT_DOUBLE_EQ(outcome.exec_values[0], 1.0);  // clamped to true w
}

TEST(CpAuction, MisreportingUnprofitable) {
    for (double factor : {0.5, 1.5, 3.0}) {
        std::vector<CpAgent> honest{{1.0, 1.0, 1.0}, {2.0, 1.0, 1.0}, {1.5, 1.0, 1.0}};
        std::vector<CpAgent> lying = honest;
        lying[1].bid_factor = factor;
        const auto honest_outcome = run_cp_auction(0.4, honest);
        const auto lying_outcome = run_cp_auction(0.4, lying);
        EXPECT_LE(lying_outcome.utility(1), honest_outcome.utility(1) + 1e-12)
            << factor;
    }
}

TEST(CpAuction, RejectsTooFewAgents) {
    EXPECT_THROW(run_cp_auction(0.4, {CpAgent{}}), std::invalid_argument);
}

}  // namespace
}  // namespace dlsbl::mech
