// MetricsExporter tests: Prometheus exposition-format conformance of the
// rendered bodies (socketless, exact bytes) plus an end-to-end scrape of a
// live ephemeral port over a raw client socket.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DLSBL_TEST_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DLSBL_TEST_HAVE_SOCKETS 0
#endif

namespace dlsbl {
namespace {

// ---- exposition-format conformance ------------------------------------------

// Checks one exposition body against the text-format grammar: every line is
// either a `# HELP`/`# TYPE` comment or `name{labels} value` with a valid
// metric name and a parseable number.
void expect_valid_exposition(const std::string& body) {
    std::istringstream in(body);
    std::size_t line_no = 0;
    for (std::string line; std::getline(in, line);) {
        ++line_no;
        SCOPED_TRACE("line " + std::to_string(line_no) + ": " + line);
        ASSERT_FALSE(line.empty());
        if (line[0] == '#') {
            EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0);
            continue;
        }
        // Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
        std::size_t i = 0;
        ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                    line[0] == '_' || line[0] == ':');
        while (i < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[i])) || line[i] == '_' ||
                line[i] == ':')) {
            ++i;
        }
        ASSERT_LT(i, line.size());
        if (line[i] == '{') {
            const std::size_t close = line.find('}', i);
            ASSERT_NE(close, std::string::npos);
            i = close + 1;
        }
        ASSERT_LT(i, line.size());
        ASSERT_EQ(line[i], ' ');
        const std::string value = line.substr(i + 1);
        ASSERT_FALSE(value.empty());
        if (value != "+Inf" && value != "-Inf" && value != "NaN") {
            std::size_t parsed = 0;
            EXPECT_NO_THROW({
                (void)std::stod(value, &parsed);
                EXPECT_EQ(parsed, value.size());
            });
        }
    }
}

// MetricsRegistry owns a mutex (not movable), so tests fill one in place.
void fill_sample(obs::MetricsRegistry& registry) {
    registry.set_help("requests_total", "Requests observed");
    registry.counter("requests_total").inc(3);
    registry.counter("requests_total", {{"phase", "Bidding"}}).inc(5);
    registry.gauge("temperature").set(21.5);
    auto& h = registry.histogram("latency_seconds", {0.1, 1.0});
    h.observe(0.05);
    h.observe(0.5);
    h.observe(2.0);
}

TEST(ObsExporterFormat, DefaultOptionsMatchLegacyRendering) {
    obs::MetricsRegistry registry;
    fill_sample(registry);
    EXPECT_EQ(registry.prometheus_text(),
              registry.prometheus_text(obs::MetricsRegistry::PrometheusOptions{}));
}

TEST(ObsExporterFormat, BodyConformsToExpositionGrammar) {
    obs::MetricsRegistry registry;
    fill_sample(registry);
    obs::MetricsRegistry::PrometheusOptions options;
    options.quantiles = {0.5, 0.95};
    options.extra_labels = {{"run", "run-7"}};
    const std::string body = registry.prometheus_text(options);
    expect_valid_exposition(body);

    // HELP precedes TYPE, TYPE precedes the series.
    const auto help = body.find("# HELP requests_total Requests observed");
    const auto type = body.find("# TYPE requests_total counter");
    const auto series = body.find("requests_total{run=\"run-7\"} 3");
    ASSERT_NE(help, std::string::npos) << body;
    ASSERT_NE(type, std::string::npos);
    ASSERT_NE(series, std::string::npos);
    EXPECT_LT(help, type);
    EXPECT_LT(type, series);
}

TEST(ObsExporterFormat, ExtraLabelsSpliceIntoExistingLabelSets) {
    obs::MetricsRegistry registry;
    fill_sample(registry);
    obs::MetricsRegistry::PrometheusOptions options;
    options.extra_labels = {{"run", "run-7"}};
    const std::string body = registry.prometheus_text(options);
    // Unlabeled series gains the label set; labeled series appends.
    EXPECT_NE(body.find("requests_total{run=\"run-7\"} 3"), std::string::npos) << body;
    EXPECT_NE(body.find("requests_total{phase=\"Bidding\",run=\"run-7\"} 5"),
              std::string::npos);
    EXPECT_NE(body.find("latency_seconds_bucket{run=\"run-7\",le=\"0.1\"} 1"),
              std::string::npos);
}

TEST(ObsExporterFormat, QuantileLinesFollowHistogramSeries) {
    obs::MetricsRegistry registry;
    fill_sample(registry);
    obs::MetricsRegistry::PrometheusOptions options;
    options.quantiles = {0.5, 0.99};
    const std::string body = registry.prometheus_text(options);
    const auto count_pos = body.find("latency_seconds_count 3");
    const auto p50_pos = body.find("latency_seconds{quantile=\"0.5\"} ");
    const auto p99_pos = body.find("latency_seconds{quantile=\"0.99\"} ");
    ASSERT_NE(count_pos, std::string::npos) << body;
    ASSERT_NE(p50_pos, std::string::npos);
    ASSERT_NE(p99_pos, std::string::npos);
    EXPECT_LT(count_pos, p50_pos);
    EXPECT_LT(p50_pos, p99_pos);
}

TEST(ObsExporterFormat, LabelValuesEscapeQuotesAndBackslashes) {
    obs::MetricsRegistry registry;
    registry.counter("weird_total", {{"path", "a\"b\\c\n"}}).inc();
    const std::string body = registry.prometheus_text();
    EXPECT_NE(body.find("weird_total{path=\"a\\\"b\\\\c\\n\"} 1"), std::string::npos)
        << body;
    expect_valid_exposition(body);
}

// ---- exporter bodies (socketless) -------------------------------------------

TEST(ObsExporter, RenderMetricsIncludesSelfGlobalAndAttachedRuns) {
    obs::MetricsExporter exporter;
    obs::MetricsRegistry run_registry;
    fill_sample(run_registry);
    exporter.attach_run("sweep-3", &run_registry);

    const std::string body = exporter.render_metrics();
    expect_valid_exposition(body);
    EXPECT_NE(body.find("dlsbl_exporter_uptime_seconds"), std::string::npos) << body;
    EXPECT_NE(body.find("requests_total{run=\"sweep-3\"} 3"), std::string::npos);
    // Default quantile set renders on attached histograms.
    EXPECT_NE(body.find("latency_seconds{run=\"sweep-3\",quantile=\"0.95\"} "),
              std::string::npos);

    // Detaching removes the series but keeps the run listed in /runs.
    exporter.detach_run("sweep-3");
    EXPECT_EQ(exporter.render_metrics().find("run=\"sweep-3\""), std::string::npos);
}

TEST(ObsExporter, RenderRunsIsValidJsonWithManifestAndActiveFlag) {
    obs::MetricsExporter exporter;
    obs::MetricsRegistry run_registry;
    fill_sample(run_registry);
    exporter.attach_run("sweep-3", &run_registry);
    exporter.record_run_manifest("sweep-3", "{\"tool\":\"test\",\"seed\":42}");
    exporter.detach_run("sweep-3");
    exporter.attach_run("sweep-4", &run_registry);

    const std::string body = exporter.render_runs();
    const auto doc = obs::json_parse(body);
    ASSERT_TRUE(doc.has_value()) << body;
    const auto* runs = doc->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), 2u);
    EXPECT_EQ(runs->array[0].find("name")->string, "sweep-3");
    EXPECT_FALSE(runs->array[0].find("active")->boolean);
    ASSERT_NE(runs->array[0].find("manifest"), nullptr);
    EXPECT_EQ(runs->array[0].find("manifest")->find("seed")->number, 42.0);
    EXPECT_TRUE(runs->array[1].find("active")->boolean);
}

// ---- end-to-end over a live socket ------------------------------------------

#if DLSBL_TEST_HAVE_SOCKETS

// Minimal scrape client: connect to loopback, send one request, read until
// the server closes (Connection: close).
std::string http_get(std::uint16_t port, const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    std::string out;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
        (void)::send(fd, request.data(), request.size(), 0);
        char buffer[4096];
        for (;;) {
            const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
            if (got <= 0) break;
            out.append(buffer, static_cast<std::size_t>(got));
        }
    }
    ::close(fd);
    return out;
}

TEST(ObsExporterLive, ServesMetricsHealthzAndRunsOnEphemeralPort) {
    obs::MetricsExporter exporter;  // port 0 = ephemeral
    obs::MetricsRegistry run_registry;
    fill_sample(run_registry);
    exporter.attach_run("run-0", &run_registry);
    ASSERT_TRUE(exporter.start());
    ASSERT_TRUE(exporter.running());
    ASSERT_GT(exporter.port(), 0);

    const std::string metrics =
        http_get(exporter.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(metrics.find("requests_total{run=\"run-0\"} 3"), std::string::npos);
    EXPECT_NE(metrics.find("latency_seconds{run=\"run-0\",quantile=\"0.99\"} "),
              std::string::npos);

    const std::string health =
        http_get(exporter.port(), "GET /healthz HTTP/1.1\r\n\r\n");
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok"), std::string::npos);

    const std::string runs = http_get(exporter.port(), "GET /runs HTTP/1.1\r\n\r\n");
    EXPECT_NE(runs.find("200 OK"), std::string::npos);
    EXPECT_NE(runs.find("\"name\":\"run-0\""), std::string::npos);

    EXPECT_NE(http_get(exporter.port(), "GET /nope HTTP/1.1\r\n\r\n")
                  .find("404 Not Found"),
              std::string::npos);
    EXPECT_NE(http_get(exporter.port(), "POST /metrics HTTP/1.1\r\n\r\n")
                  .find("405 Method Not Allowed"),
              std::string::npos);

    // The second scrape sees the first one's self-telemetry.
    const std::string again =
        http_get(exporter.port(), "GET /metrics HTTP/1.1\r\n\r\n");
    EXPECT_NE(again.find("dlsbl_exporter_scrapes_total{path=\"/metrics\"}"),
              std::string::npos);

    exporter.stop();
    EXPECT_FALSE(exporter.running());
}

TEST(ObsExporterLive, StartStopIsIdempotentAndRestartable) {
    obs::MetricsExporter exporter;
    ASSERT_TRUE(exporter.start());
    EXPECT_TRUE(exporter.start());  // already running: no-op success
    const std::uint16_t first_port = exporter.port();
    EXPECT_GT(first_port, 0);
    exporter.stop();
    exporter.stop();  // idempotent
    ASSERT_TRUE(exporter.start());
    EXPECT_NE(http_get(exporter.port(), "GET /healthz HTTP/1.1\r\n\r\n").find("ok"),
              std::string::npos);
}

TEST(ObsExporterLive, ConcurrentScrapesAndRunChurn) {
    // Exercised under TSan via the sanitized test variant: scrapes race
    // attach/detach and the run table mutex must keep them clean.
    obs::MetricsExporter exporter;
    ASSERT_TRUE(exporter.start());
    obs::MetricsRegistry run_registry;
    fill_sample(run_registry);
    for (int i = 0; i < 8; ++i) {
        const std::string name = "churn-" + std::to_string(i);
        exporter.attach_run(name, &run_registry);
        const std::string body =
            http_get(exporter.port(), "GET /metrics HTTP/1.1\r\n\r\n");
        EXPECT_NE(body.find("run=\"" + name + "\""), std::string::npos);
        exporter.detach_run(name);
    }
}

#endif  // DLSBL_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace dlsbl
