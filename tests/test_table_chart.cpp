#include "util/chart.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

namespace dlsbl::util {
namespace {

TEST(Table, RendersAlignedColumns) {
    Table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"a-much-longer-name", "2.5"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
    // Every rendered line has equal width.
    std::size_t width = 0;
    std::size_t start = 0;
    while (start < out.size()) {
        const std::size_t end = out.find('\n', start);
        const std::size_t len = end - start;
        if (width == 0) width = len;
        EXPECT_EQ(len, width);
        start = end + 1;
    }
}

TEST(Table, RowWidthMismatchThrows) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeadersThrow) {
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumericRowFormatting) {
    Table t({"x", "y"});
    t.set_precision(3);
    t.add_numeric_row({1.0, 0.333333333});
    const std::string out = t.render();
    EXPECT_NE(out.find("| 1 "), std::string::npos);
    EXPECT_NE(out.find("0.333"), std::string::npos);
}

TEST(Table, FormatDoubleIntegers) {
    EXPECT_EQ(Table::format_double(42.0, 4), "42");
    EXPECT_EQ(Table::format_double(-3.0, 4), "-3");
    EXPECT_EQ(Table::format_double(0.5, 4), "0.5");
}

TEST(Chart, ScatterContainsGlyphsAndLegend) {
    Series s1{"alpha", {0.0, 1.0, 2.0}, {0.0, 1.0, 4.0}};
    Series s2{"beta", {0.0, 1.0, 2.0}, {4.0, 1.0, 0.0}};
    ChartOptions options;
    options.x_label = "bid";
    options.y_label = "utility";
    const std::string out = render_scatter({s1, s2}, options);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_NE(out.find("utility"), std::string::npos);
}

TEST(Chart, EmptyScatter) {
    EXPECT_EQ(render_scatter({}, {}), "(empty chart)\n");
}

TEST(Chart, ConstantSeriesDoesNotCrash) {
    Series s{"flat", {1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}};
    const std::string out = render_scatter({s}, {});
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Chart, GanttLanesInFirstAppearanceOrder) {
    std::vector<GanttBar> bars{
        {"BUS", 0.0, 1.0, '-'},
        {"P1", 1.0, 3.0, '#'},
        {"P2", 2.0, 4.0, '#'},
    };
    const std::string out = render_gantt(bars, {});
    const auto bus = out.find("BUS");
    const auto p1 = out.find("P1");
    const auto p2 = out.find("P2");
    EXPECT_LT(bus, p1);
    EXPECT_LT(p1, p2);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(Chart, GanttEmpty) {
    EXPECT_EQ(render_gantt({}, {}), "(empty gantt)\n");
}

}  // namespace
}  // namespace dlsbl::util
