// Unit tests for the observability layer: JSON escaping/parsing, the
// metrics registry, the scoped profiler, the run manifest, the event log
// sinks, and the trace -> Gantt / catapult converters.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/catapult.hpp"
#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace dlsbl {
namespace {

// ---- JSON -------------------------------------------------------------------

TEST(ObsJson, EscapeBasics) {
    EXPECT_EQ(obs::json_escape("hello"), "\"hello\"");
    EXPECT_EQ(obs::json_escape("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(obs::json_escape("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(obs::json_escape("a\nb\tc"), "\"a\\nb\\tc\"");
    EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\"\\u0001\"");
    EXPECT_EQ(obs::json_escape(std::string("\xff", 1)), "\"\\u00ff\"");
}

TEST(ObsJson, EscapeThenParseIsIdentityOnArbitraryBytes) {
    util::Xoshiro256 rng{0xfeedu};
    for (int round = 0; round < 200; ++round) {
        std::string raw;
        const std::size_t length = rng.uniform_int(0, 64);
        for (std::size_t i = 0; i < length; ++i) {
            raw.push_back(static_cast<char>(rng.uniform_int(0, 255)));
        }
        const std::string literal = obs::json_escape(raw);
        const auto parsed = obs::json_parse(literal);
        ASSERT_TRUE(parsed.has_value()) << "round " << round;
        ASSERT_EQ(parsed->kind, obs::JsonValue::Kind::kString);
        EXPECT_EQ(parsed->string, raw) << "round " << round;
    }
}

TEST(ObsJson, NumberRoundTrips) {
    const double cases[] = {0.0,   -0.0,     1.0,       -1.5,     1e-300,
                            1e300, 1.0 / 3., 0.1 + 0.2, 123456.75};
    for (const double value : cases) {
        const std::string text = obs::json_number(value);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
    }
    // JSON has no inf/nan.
    EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(ObsJson, ParserAcceptsStructuresAndPreservesFieldOrder) {
    const auto doc = obs::json_parse(
        R"({"b":1,"a":[true,false,null,"x"],"c":{"n":-2.5e1}})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->kind, obs::JsonValue::Kind::kObject);
    ASSERT_EQ(doc->object.size(), 3u);
    EXPECT_EQ(doc->object[0].first, "b");  // insertion order, not sorted
    EXPECT_EQ(doc->object[1].first, "a");
    const auto* a = doc->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 4u);
    EXPECT_TRUE(a->array[0].boolean);
    EXPECT_EQ(a->array[2].kind, obs::JsonValue::Kind::kNull);
    const auto* n = doc->find("c")->find("n");
    ASSERT_NE(n, nullptr);
    EXPECT_DOUBLE_EQ(n->number, -25.0);
}

TEST(ObsJson, ParserRejectsGarbage) {
    EXPECT_FALSE(obs::json_parse("").has_value());
    EXPECT_FALSE(obs::json_parse("{").has_value());
    EXPECT_FALSE(obs::json_parse("{}x").has_value());
    EXPECT_FALSE(obs::json_parse("[1,]").has_value());
    EXPECT_FALSE(obs::json_parse("'single'").has_value());
    EXPECT_FALSE(obs::json_parse("\"raw\ncontrol\"").has_value());
}

// ---- metrics ----------------------------------------------------------------

TEST(ObsMetrics, CountersGaugesAndLabels) {
    obs::MetricsRegistry registry;
    registry.counter("requests_total").inc();
    registry.counter("requests_total").inc(2);
    registry.counter("requests_total", {{"phase", "Bidding"}}).inc(5);
    registry.gauge("temperature").set(21.5);

    EXPECT_EQ(registry.counter("requests_total").value(), 3u);
    EXPECT_EQ(registry.counter("requests_total", {{"phase", "Bidding"}}).value(), 5u);

    const std::string text = registry.prometheus_text();
    EXPECT_NE(text.find("requests_total 3"), std::string::npos);
    EXPECT_NE(text.find("requests_total{phase=\"Bidding\"} 5"), std::string::npos);
    EXPECT_NE(text.find("temperature 21.5"), std::string::npos);
}

TEST(ObsMetrics, HistogramBuckets) {
    obs::MetricsRegistry registry;
    auto& h = registry.histogram("latency", {0.1, 1.0, 10.0});
    h.observe(0.05);
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 55.55);
    const auto cumulative = h.cumulative_counts();
    ASSERT_EQ(cumulative.size(), 4u);  // three bounds + +Inf
    EXPECT_EQ(cumulative[0], 1u);
    EXPECT_EQ(cumulative[1], 2u);
    EXPECT_EQ(cumulative[2], 3u);
    EXPECT_EQ(cumulative[3], 4u);

    const std::string text = registry.prometheus_text();
    EXPECT_NE(text.find("latency_bucket{le=\"+Inf\"} 4"), std::string::npos);
    EXPECT_NE(text.find("latency_count 4"), std::string::npos);

    EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsMetrics, HistogramTracksMinAndMax) {
    obs::Histogram h({1.0, 10.0});
    EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    h.observe(4.0);
    h.observe(0.25);
    h.observe(7.5);
    EXPECT_DOUBLE_EQ(h.min(), 0.25);
    EXPECT_DOUBLE_EQ(h.max(), 7.5);
}

TEST(ObsMetrics, HistogramQuantileInterpolatesExactly) {
    // Two observations in one bucket: the interpolation endpoints are the
    // observed min (lower edge of the first bucket) and the observed max
    // (bucket bound clipped to max), so every value is exactly computable.
    obs::Histogram h({10.0});
    h.observe(2.0);
    h.observe(4.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);    // q<=0 -> min
    EXPECT_DOUBLE_EQ(h.quantile(-3.0), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);    // rank 1 of 2: halfway
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);    // rank 2 of 2: max
    EXPECT_DOUBLE_EQ(h.quantile(7.0), 4.0);    // q>1 clamps

    // One observation per bucket: rank q*count lands on exact bucket edges.
    obs::Histogram spread({1.0, 2.0, 3.0, 4.0});
    spread.observe(0.5);
    spread.observe(1.5);
    spread.observe(2.5);
    spread.observe(3.5);
    EXPECT_DOUBLE_EQ(spread.p50(), 2.0);  // rank 2 -> upper edge of bucket le=2
    // rank 3.96 -> bucket le=4: lower 3, upper min(4, max)=3.5, fraction 0.96.
    EXPECT_DOUBLE_EQ(spread.p99(), 3.0 + 0.5 * 0.96);
    EXPECT_DOUBLE_EQ(spread.quantile(0.25), 0.5 + 0.5 * 1.0);  // within bucket 0
}

TEST(ObsMetrics, HistogramQuantileEdgeCases) {
    obs::Histogram empty({1.0});
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(empty.p95(), 0.0);

    // Single observation: every quantile is that value.
    obs::Histogram one({1.0, 100.0});
    one.observe(42.0);
    EXPECT_DOUBLE_EQ(one.p50(), 42.0);
    EXPECT_DOUBLE_EQ(one.p95(), 42.0);
    EXPECT_DOUBLE_EQ(one.p99(), 42.0);

    // Rank falling in the +Inf bucket returns the observed max, never Inf.
    obs::Histogram overflow({1.0});
    overflow.observe(0.5);
    overflow.observe(5.0);
    EXPECT_DOUBLE_EQ(overflow.p95(), 5.0);
    EXPECT_DOUBLE_EQ(overflow.quantile(1.0), 5.0);
}

TEST(ObsMetrics, HistogramMergePreservesMinMaxAndQuantiles) {
    obs::Histogram a({10.0});
    obs::Histogram b({10.0});
    a.observe(2.0);
    b.observe(4.0);
    a.merge_from(b);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.quantile(0.5), 3.0);  // same as observing both directly
}

TEST(MetricsConcurrency, CrossMergeNoDeadlock) {
    // Regression pin for the analyzer's lock-order finding: merge_from used
    // to take the two histogram mutexes with sequential lock_guards, so two
    // threads merging the same pair in opposite directions could each hold
    // one mutex while waiting for the other. std::scoped_lock acquires both
    // via std::lock's deadlock-avoidance ordering; this must now terminate.
    obs::Histogram a({1.0, 10.0});
    obs::Histogram b({1.0, 10.0});
    obs::MetricsRegistry ra, rb;
    ra.counter("shared").inc();
    rb.counter("shared").inc();
    constexpr int kRounds = 500;
    std::thread forward([&] {
        for (int i = 0; i < kRounds; ++i) {
            a.observe(0.5);
            a.merge_from(b);
            ra.merge_from(rb);
        }
    });
    std::thread backward([&] {
        for (int i = 0; i < kRounds; ++i) {
            b.observe(5.0);
            b.merge_from(a);
            rb.merge_from(ra);
        }
    });
    forward.join();
    backward.join();
    EXPECT_GE(a.count() + b.count(), 2u * kRounds);
}

TEST(ObsMetrics, ExportIsDeterministic) {
    auto fill = [](obs::MetricsRegistry& registry) {
        registry.counter("b_metric", {{"k", "2"}}).inc();
        registry.counter("a_metric").inc(7);
        registry.counter("b_metric", {{"k", "1"}}).inc(3);
        registry.gauge("z_gauge").set(1.25);
    };
    obs::MetricsRegistry first, second;
    fill(first);
    fill(second);
    EXPECT_EQ(first.prometheus_text(), second.prometheus_text());
    EXPECT_EQ(first.json_snapshot(), second.json_snapshot());
    // The snapshot is valid JSON.
    EXPECT_TRUE(obs::json_parse(first.json_snapshot()).has_value());
}

// ---- profiler ---------------------------------------------------------------

TEST(ObsProfiler, DisabledScopesRecordNothing) {
    auto& profiler = obs::Profiler::instance();
    profiler.set_enabled(false);
    profiler.reset();
    { OBS_SCOPE("ghost"); }
    EXPECT_EQ(profiler.total_calls("ghost"), 0u);
}

TEST(ObsProfiler, NestedScopesBuildTree) {
    auto& profiler = obs::Profiler::instance();
    profiler.reset();
    profiler.set_enabled(true);
    for (int i = 0; i < 3; ++i) {
        OBS_SCOPE("outer");
        OBS_SCOPE("inner");
    }
    profiler.set_enabled(false);
    EXPECT_EQ(profiler.total_calls("outer"), 3u);
    EXPECT_EQ(profiler.total_calls("inner"), 3u);
    EXPECT_GE(profiler.total_ns("outer"), profiler.total_ns("inner"));
    const std::string report = profiler.report();
    EXPECT_NE(report.find("outer"), std::string::npos);
    EXPECT_NE(report.find("inner"), std::string::npos);
    profiler.reset();
}

// ---- manifest ---------------------------------------------------------------

TEST(ObsManifest, ProducesParsableJsonWithProvenance) {
    obs::RunManifest manifest;
    manifest.set("bench", "unit-test").set_num("z", 0.25).set_uint("seed", 42);
    obs::MetricsRegistry registry;
    registry.counter("runs_total").inc();

    const std::string json = manifest.to_json(&registry);
    const auto doc = obs::json_parse(json);
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->find("v")->number, obs::RunManifest::kSchemaVersion);
    EXPECT_EQ(doc->find("tool")->string, "dlsbl");
    EXPECT_FALSE(doc->find("git")->string.empty());
    EXPECT_EQ(doc->find("bench")->string, "unit-test");
    EXPECT_DOUBLE_EQ(doc->find("seed")->number, 42.0);
    EXPECT_DOUBLE_EQ(doc->find("metrics")->find("runs_total")->number, 1.0);
}

// ---- event log --------------------------------------------------------------

TEST(ObsEvents, JsonlFieldOrderAndEscaping) {
    obs::Event event(util::LogLevel::Info, "test", "demo");
    event.time(1.5)
        .str("who", "P1")
        .num("value", 0.25)
        .uint("count", 7)
        .boolean("ok", true)
        .str("nasty", "a\"b\\c\nd");
    const std::string line = event.to_json();
    const auto doc = obs::json_parse(line);
    ASSERT_TRUE(doc.has_value());
    // Schema: v first, then level/component/event/t, then fields in
    // insertion order.
    ASSERT_GE(doc->object.size(), 5u);
    EXPECT_EQ(doc->object[0].first, "v");
    EXPECT_EQ(doc->object[1].first, "level");
    EXPECT_EQ(doc->object[2].first, "component");
    EXPECT_EQ(doc->object[3].first, "event");
    EXPECT_EQ(doc->object[4].first, "t");
    EXPECT_EQ(doc->find("level")->string, "info");
    EXPECT_EQ(doc->find("nasty")->string, "a\"b\\c\nd");
    EXPECT_DOUBLE_EQ(doc->find("t")->number, 1.5);
    EXPECT_TRUE(doc->find("ok")->boolean);
}

TEST(ObsEvents, EventLogLevelGatesSinks) {
    auto& log = obs::EventLog::instance();
    log.reset();
    std::ostringstream captured;
    auto sink = std::make_shared<obs::JsonlSink>(captured);
    log.add_sink(sink);
    log.set_level(util::LogLevel::Warn);

    log.emit(obs::Event(util::LogLevel::Debug, "test", "hidden"));
    log.emit(obs::Event(util::LogLevel::Error, "test", "shown"));
    log.flush();

    const std::string text = captured.str();
    EXPECT_EQ(text.find("hidden"), std::string::npos);
    EXPECT_NE(text.find("shown"), std::string::npos);
    log.reset();
}

TEST(ObsEvents, LoggerBridgeRoutesLegacyCalls) {
    obs::install_logger_bridge();
    auto& log = obs::EventLog::instance();
    log.reset();
    std::ostringstream captured;
    auto sink = std::make_shared<obs::JsonlSink>(captured);
    log.add_sink(sink);
    obs::set_log_level(util::LogLevel::Debug);

    util::log_debug("legacy", "routed message");
    log.flush();

    const std::string text = captured.str();
    ASSERT_FALSE(text.empty());
    const auto doc = obs::json_parse(text.substr(0, text.find('\n')));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("component")->string, "legacy");
    EXPECT_EQ(doc->find("message")->string, "routed message");
    obs::set_log_level(util::LogLevel::Warn);
    log.reset();
}

TEST(ObsEvents, ParseLogLevel) {
    util::LogLevel level;
    EXPECT_TRUE(obs::parse_log_level("debug", level));
    EXPECT_EQ(level, util::LogLevel::Debug);
    EXPECT_TRUE(obs::parse_log_level("off", level));
    EXPECT_EQ(level, util::LogLevel::Off);
    EXPECT_FALSE(obs::parse_log_level("verbose", level));
}

// ---- trace -> Gantt / catapult ---------------------------------------------

TEST(TraceGantt, ToleratesUnmatchedStartEvents) {
    sim::TraceRecorder trace;
    trace.record(0.0, sim::TraceKind::kLoadTransferStart, "P1", "to=P2");
    trace.record(1.0, sim::TraceKind::kComputeStart, "P2", "");
    trace.record(2.0, sim::TraceKind::kComputeEnd, "P2", "");
    // A terminated run can leave a transfer and a compute open: P1's
    // transfer never ends, P3 starts computing at the horizon and is cut.
    trace.record(2.5, sim::TraceKind::kComputeStart, "P3", "");

    const auto bars = sim::gantt_from_trace(trace);
    ASSERT_EQ(bars.size(), 3u);

    bool bus_seen = false, p2_seen = false, p3_seen = false;
    for (const auto& bar : bars) {
        EXPECT_GE(bar.end, bar.start);
        if (bar.lane == "BUS") {
            bus_seen = true;
            EXPECT_DOUBLE_EQ(bar.start, 0.0);
            EXPECT_DOUBLE_EQ(bar.end, 2.5);  // clipped to the trace horizon
        } else if (bar.lane == "P2") {
            p2_seen = true;
            EXPECT_DOUBLE_EQ(bar.start, 1.0);
            EXPECT_DOUBLE_EQ(bar.end, 2.0);
        } else if (bar.lane == "P3") {
            p3_seen = true;
            EXPECT_DOUBLE_EQ(bar.start, 2.5);
            EXPECT_DOUBLE_EQ(bar.end, 2.5);  // zero-width, never negative
        }
    }
    EXPECT_TRUE(bus_seen);
    EXPECT_TRUE(p2_seen);
    EXPECT_TRUE(p3_seen);
}

TEST(Catapult, HandBuiltTraceExportsValidJson) {
    sim::TraceRecorder trace;
    trace.record(0.0, sim::TraceKind::kPhaseChange, "protocol", "Bidding");
    trace.record(0.0, sim::TraceKind::kMessageSent, "P1", "type=bid");
    trace.record(0.5, sim::TraceKind::kLoadTransferStart, "P1", "to=P2");
    trace.record(1.0, sim::TraceKind::kLoadTransferEnd, "P1", "to=P2");
    trace.record(1.0, sim::TraceKind::kComputeStart, "P2", "");
    trace.record(3.0, sim::TraceKind::kComputeEnd, "P2", "");
    trace.record(3.0, sim::TraceKind::kVerdict, "referee", "detail with \"quotes\"");

    const std::string json = obs::catapult_from_trace(trace);
    const auto doc = obs::json_parse(json);
    ASSERT_TRUE(doc.has_value());
    const auto* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, obs::JsonValue::Kind::kArray);

    std::size_t complete = 0, instants = 0, metadata = 0;
    bool p2_span = false;
    for (const auto& event : events->array) {
        const std::string& ph = event.find("ph")->string;
        if (ph == "X") {
            ++complete;
            // ts/dur are in microseconds (time_scale = 1e6).
            if (event.find("name")->string == "compute") {
                p2_span = true;
                EXPECT_DOUBLE_EQ(event.find("ts")->number, 1e6);
                EXPECT_DOUBLE_EQ(event.find("dur")->number, 2e6);
            }
        } else if (ph == "i") {
            ++instants;
        } else if (ph == "M") {
            ++metadata;
        }
    }
    EXPECT_EQ(complete, 2u);  // one transfer + one compute span
    EXPECT_EQ(instants, 3u);  // phase change + message + verdict
    EXPECT_GE(metadata, 4u);  // process_name + protocol/BUS/P1/P2/referee
    EXPECT_TRUE(p2_span);
}

}  // namespace
}  // namespace dlsbl
