#include "util/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace dlsbl::util {
namespace {

TEST(BigInt, DefaultIsZero) {
    BigInt z;
    EXPECT_TRUE(z.is_zero());
    EXPECT_EQ(z.sign(), 0);
    EXPECT_EQ(z.to_string(), "0");
}

TEST(BigInt, Int64RoundTrip) {
    for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                           std::int64_t{42}, std::int64_t{-123456789},
                           std::int64_t{1} << 40, INT64_MAX, INT64_MIN}) {
        BigInt b{v};
        ASSERT_TRUE(b.fits_int64()) << v;
        EXPECT_EQ(b.to_int64(), v);
        EXPECT_EQ(b.to_string(), std::to_string(v));
    }
}

TEST(BigInt, DecimalParseRoundTrip) {
    const std::string digits = "123456789012345678901234567890123456789";
    BigInt b{digits};
    EXPECT_EQ(b.to_string(), digits);
    BigInt neg{"-" + digits};
    EXPECT_EQ(neg.to_string(), "-" + digits);
}

TEST(BigInt, ParseRejectsGarbage) {
    EXPECT_THROW(BigInt::from_decimal(""), std::invalid_argument);
    EXPECT_THROW(BigInt::from_decimal("-"), std::invalid_argument);
    EXPECT_THROW(BigInt::from_decimal("12a3"), std::invalid_argument);
}

TEST(BigInt, AdditionCarries) {
    BigInt a{"99999999999999999999999999"};
    BigInt one{1};
    EXPECT_EQ((a + one).to_string(), "100000000000000000000000000");
}

TEST(BigInt, SignedAddition) {
    EXPECT_EQ((BigInt{5} + BigInt{-7}).to_int64(), -2);
    EXPECT_EQ((BigInt{-5} + BigInt{7}).to_int64(), 2);
    EXPECT_EQ((BigInt{-5} + BigInt{-7}).to_int64(), -12);
    EXPECT_EQ((BigInt{5} + BigInt{-5}).sign(), 0);
}

TEST(BigInt, Subtraction) {
    BigInt a{"1000000000000000000000"};
    BigInt b{"999999999999999999999"};
    EXPECT_EQ((a - b).to_string(), "1");
    EXPECT_EQ((b - a).to_string(), "-1");
}

TEST(BigInt, Multiplication) {
    BigInt a{"123456789123456789"};
    BigInt b{"987654321987654321"};
    EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
    EXPECT_EQ((a * BigInt{0}).sign(), 0);
    EXPECT_EQ((a * BigInt{-1}).to_string(), "-123456789123456789");
}

TEST(BigInt, DivModTruncatesTowardZero) {
    // C++ semantics: (-7)/2 == -3, (-7)%2 == -1.
    BigInt q, r;
    BigInt::div_mod(BigInt{-7}, BigInt{2}, q, r);
    EXPECT_EQ(q.to_int64(), -3);
    EXPECT_EQ(r.to_int64(), -1);
    BigInt::div_mod(BigInt{7}, BigInt{-2}, q, r);
    EXPECT_EQ(q.to_int64(), -3);
    EXPECT_EQ(r.to_int64(), 1);
}

TEST(BigInt, DivisionByZeroThrows) {
    EXPECT_THROW(BigInt{1} / BigInt{0}, std::domain_error);
    EXPECT_THROW(BigInt{1} % BigInt{0}, std::domain_error);
}

TEST(BigInt, LargeDivision) {
    BigInt a{"121932631356500531347203169112635269"};
    BigInt b{"123456789123456789"};
    EXPECT_EQ((a / b).to_string(), "987654321987654321");
    EXPECT_EQ((a % b).sign(), 0);
}

TEST(BigInt, DivModAgreesWithInt64) {
    std::mt19937_64 gen(7);
    for (int trial = 0; trial < 500; ++trial) {
        const auto a = static_cast<std::int64_t>(gen() % 2000001) - 1000000;
        auto b = static_cast<std::int64_t>(gen() % 2001) - 1000;
        if (b == 0) b = 17;
        BigInt q, r;
        BigInt::div_mod(BigInt{a}, BigInt{b}, q, r);
        EXPECT_EQ(q.to_int64(), a / b) << a << "/" << b;
        EXPECT_EQ(r.to_int64(), a % b) << a << "%" << b;
    }
}

TEST(BigInt, Comparisons) {
    EXPECT_LT(BigInt{-2}, BigInt{1});
    EXPECT_LT(BigInt{1}, BigInt{2});
    EXPECT_LT(BigInt{-3}, BigInt{-2});
    EXPECT_EQ(BigInt{5}, BigInt{"5"});
    EXPECT_GT(BigInt{"100000000000000000000"}, BigInt{INT64_MAX});
}

TEST(BigInt, Gcd) {
    EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}).to_int64(), 6);
    EXPECT_EQ(BigInt::gcd(BigInt{-12}, BigInt{18}).to_int64(), 6);
    EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}).to_int64(), 5);
    EXPECT_EQ(BigInt::gcd(BigInt{7}, BigInt{13}).to_int64(), 1);
}

TEST(BigInt, Pow) {
    EXPECT_EQ(BigInt::pow(BigInt{2}, 10).to_int64(), 1024);
    EXPECT_EQ(BigInt::pow(BigInt{10}, 30).to_string(),
              "1000000000000000000000000000000");
    EXPECT_EQ(BigInt::pow(BigInt{5}, 0).to_int64(), 1);
}

TEST(BigInt, ToDouble) {
    EXPECT_DOUBLE_EQ(BigInt{1000}.to_double(), 1000.0);
    EXPECT_DOUBLE_EQ(BigInt{-1000}.to_double(), -1000.0);
    EXPECT_NEAR(BigInt{"1000000000000000000000"}.to_double(), 1e21, 1e6);
}

TEST(BigInt, BitLength) {
    EXPECT_EQ(BigInt{0}.bit_length(), 0u);
    EXPECT_EQ(BigInt{1}.bit_length(), 1u);
    EXPECT_EQ(BigInt{255}.bit_length(), 8u);
    EXPECT_EQ(BigInt{256}.bit_length(), 9u);
    EXPECT_EQ(BigInt::pow(BigInt{2}, 100).bit_length(), 101u);
}

TEST(BigInt, ArithmeticIdentitiesRandomized) {
    std::mt19937_64 gen(42);
    for (int trial = 0; trial < 200; ++trial) {
        const auto a = static_cast<std::int64_t>(gen() % 2000001) - 1000000;
        const auto b = static_cast<std::int64_t>(gen() % 2000001) - 1000000;
        BigInt A{a}, B{b};
        EXPECT_EQ((A + B).to_int64(), a + b);
        EXPECT_EQ((A - B).to_int64(), a - b);
        EXPECT_EQ((A * B).to_int64(), a * b);
        EXPECT_EQ(((A + B) - B), A);
    }
}

}  // namespace
}  // namespace dlsbl::util
