// Truthfulness under churn: a randomized property sweep.
//
// The paper proves bidding w_i truthfully is a dominant strategy on a
// static bus (Theorem 5.1). This suite asks what survives when the bus
// churns: for a grid of (kind, m, w, z, fine-factor) × churn plans, one
// observed processor tries bid deviations while everyone else stays honest,
// and we check that its utility peaks at the truthful bid.
//
// For the empty plan the property is asserted hard — it is the paper's
// theorem and must hold. Under churn plans the property is *measured*:
// each violated instance is emitted as a counterexample record into
// property_churn_counterexamples.json (next to the test binary) and the
// held/broke tally per plan is reported; EXPERIMENTS.md records the
// dominance-held-vs-broke table for the checked-in grid.
//
// The whole sweep runs under exec::RunExecutor, and a companion test pins
// byte-identity of merged artifacts at --jobs 1/2/8 for churn-bearing
// batches (the executor's determinism contract must survive churn too).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "agents/zoo.hpp"
#include "exec/executor.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "protocol/runner.hpp"
#include "util/rng.hpp"

namespace dlsbl::protocol {
namespace {

// ---- instance grid ----------------------------------------------------------

struct PlanShape {
    const char* name;
    // Builds the plan against the chosen victim processor (never the LO,
    // never the observed deviator).
    ChurnPlan (*build)(const std::string& victim);
};

ChurnPlan plan_none(const std::string&) { return {}; }

ChurnPlan plan_crash_before_bid(const std::string& victim) {
    ChurnPlan plan;
    plan.events = {{victim, 0.0, ChurnEventKind::kCrash}};
    plan.policy.bid_timeout = 0.3;
    plan.policy.processing_grace = 0.8;
    return plan;
}

ChurnPlan plan_crash_mid_run(const std::string& victim) {
    ChurnPlan plan;
    plan.events = {{victim, 0.3, ChurnEventKind::kCrash}};
    plan.policy.processing_grace = 0.8;
    return plan;
}

ChurnPlan plan_loss_window(const std::string& victim) {
    ChurnPlan plan;
    plan.losses = {{victim, 0.4, 5.0}};
    plan.policy.processing_grace = 0.8;
    return plan;
}

constexpr PlanShape kPlans[] = {
    {"none", plan_none},
    {"crash-before-bid", plan_crash_before_bid},
    {"crash-mid-run", plan_crash_mid_run},
    {"loss-window", plan_loss_window},
};

constexpr dlt::NetworkKind kKinds[] = {dlt::NetworkKind::kNcpFE,
                                       dlt::NetworkKind::kNcpNFE};
constexpr std::size_t kMs[] = {3, 4};
constexpr double kZs[] = {0.1, 0.25};
constexpr double kFineFactors[] = {1.2, 2.0};
constexpr std::size_t kWVariants = 8;
// 2 kinds × 2 m × 2 z × 2 fine × 8 w × 4 plans = 512 instances.
constexpr std::size_t kInstances = 2 * 2 * 2 * 2 * kWVariants * 4;
// Bid deviations tried against the truthful baseline.
constexpr double kDeviations[] = {0.85, 1.15, 1.3};
// Dominance is asserted up to block-rounding noise: payments come from the
// continuous closed form but realized work is quantized to blocks, so a
// deviation can "gain" O(w/block_count) spuriously. Matches the voluntary-
// participation tolerance used by test_protocol_sweeps.
constexpr double kDominanceSlack = 2e-3;

struct Instance {
    dlt::NetworkKind kind;
    std::size_t m;
    double z;
    double fine_factor;
    std::size_t w_variant;
    const PlanShape* plan;
};

Instance decode_instance(std::size_t index) {
    Instance inst;
    inst.plan = &kPlans[index % 4];
    index /= 4;
    inst.w_variant = index % kWVariants;
    index /= kWVariants;
    inst.fine_factor = kFineFactors[index % 2];
    index /= 2;
    inst.z = kZs[index % 2];
    index /= 2;
    inst.m = kMs[index % 2];
    index /= 2;
    inst.kind = kKinds[index % 2];
    return inst;
}

// Processor roles: the LO must survive (LO death terminates the run), the
// observed deviator must not be the churn victim (we measure *its* utility
// across all runs of the instance, so it has to exist in all of them).
std::size_t lo_index(const Instance& inst) {
    return inst.kind == dlt::NetworkKind::kNcpFE ? 0 : inst.m - 1;
}
std::size_t observed_index(const Instance& inst) {
    return lo_index(inst) == 1 ? 2 : 1;
}
std::size_t victim_index(const Instance& inst) {
    for (std::size_t i = inst.m; i-- > 0;) {
        if (i != lo_index(inst) && i != observed_index(inst)) return i;
    }
    return observed_index(inst);  // unreachable for m >= 3
}

ProtocolConfig instance_config(const Instance& inst, std::uint64_t seed) {
    ProtocolConfig config;
    config.kind = inst.kind;
    config.z = inst.z;
    config.fine_policy.safety_factor = inst.fine_factor;
    // Repo-wide convention (test_protocol_sweeps): 300 blocks per processor
    // keeps block-rounding noise in utilities at the ~1/300 scale, below the
    // kDominanceSlack the verdicts use.
    config.block_count = 300 * inst.m;
    config.seed = seed;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    // w drawn deterministically from the instance seed: w_i in [0.6, 2.6).
    util::Xoshiro256 rng{seed * 8191 + inst.w_variant};
    config.true_w.resize(inst.m);
    for (auto& w : config.true_w) w = rng.uniform(0.6, 2.6);
    config.strategies.assign(inst.m, agents::truthful());
    const std::string victim = "P" + std::to_string(victim_index(inst) + 1);
    config.churn_plan = inst.plan->build(victim);
    return config;
}

struct InstanceVerdict {
    Instance inst;
    std::uint64_t seed = 0;
    bool held = true;
    double truth_utility = 0.0;
    double best_deviation = 0.0;       // multiplier that beat the truth
    double best_deviation_utility = 0.0;
};

InstanceVerdict check_instance(std::size_t index, std::uint64_t seed) {
    const Instance inst = decode_instance(index);
    InstanceVerdict verdict;
    verdict.inst = inst;
    verdict.seed = seed;

    const std::size_t observed = observed_index(inst);
    auto run_with_multiplier = [&](double multiplier) {
        auto config = instance_config(inst, seed);
        // Exact sentinel: 1.0 is the literal truthful baseline, not a
        // computed value.  DLSBL_LINT_ALLOW(float-equality)
        if (multiplier != 1.0) {
            config.strategies[observed] = agents::misreporter(multiplier);
        }
        const auto outcome = run_protocol(config);
        return outcome.processors[observed].utility();
    };

    verdict.truth_utility = run_with_multiplier(1.0);
    verdict.best_deviation_utility = verdict.truth_utility;
    for (const double multiplier : kDeviations) {
        const double utility = run_with_multiplier(multiplier);
        if (utility > verdict.best_deviation_utility + kDominanceSlack) {
            verdict.held = false;
            verdict.best_deviation_utility = utility;
            verdict.best_deviation = multiplier;
        }
    }
    return verdict;
}

std::string counterexample_json(const InstanceVerdict& v) {
    std::ostringstream out;
    out.precision(17);
    out << "{\"kind\":\"" << dlt::to_string(v.inst.kind) << "\""
        << ",\"m\":" << v.inst.m << ",\"z\":" << v.inst.z
        << ",\"fine_factor\":" << v.inst.fine_factor
        << ",\"w_variant\":" << v.inst.w_variant
        << ",\"plan\":\"" << v.inst.plan->name << "\""
        << ",\"seed\":" << v.seed
        << ",\"truth_utility\":" << v.truth_utility
        << ",\"deviation\":" << v.best_deviation
        << ",\"deviation_utility\":" << v.best_deviation_utility << "}";
    return out.str();
}

// ---- the sweep --------------------------------------------------------------

TEST(ChurnProperty, TruthfulnessSweepAcrossChurnPlans) {
    exec::RunExecutor pool({.jobs = 0, .root_seed = 0xC4u});
    const auto verdicts =
        pool.map(kInstances, [](exec::RunSlot& slot) {
            return check_instance(slot.index(), slot.seed());
        });

    std::map<std::string, std::pair<std::size_t, std::size_t>> tally;  // held/broke
    std::vector<std::string> counterexamples;
    for (const auto& v : verdicts) {
        auto& [held, broke] = tally[v.inst.plan->name];
        if (v.held) {
            ++held;
        } else {
            ++broke;
            counterexamples.push_back(counterexample_json(v));
        }
        // The static-bus case is Theorem 5.1: no measuring, it must hold.
        if (std::string(v.inst.plan->name) == "none") {
            EXPECT_TRUE(v.held)
                << "dominance broke WITHOUT churn: " << counterexample_json(v);
        }
    }

    // Counterexample artifact (empty array when dominance held everywhere):
    // the EXPERIMENTS.md churn-dominance table is regenerated from this.
    std::ofstream artifact("property_churn_counterexamples.json");
    artifact << "[\n";
    for (std::size_t i = 0; i < counterexamples.size(); ++i) {
        artifact << "  " << counterexamples[i]
                 << (i + 1 < counterexamples.size() ? ",\n" : "\n");
    }
    artifact << "]\n";

    std::size_t total = 0;
    for (const auto& [plan, counts] : tally) {
        total += counts.first + counts.second;
        RecordProperty(std::string("held_") + plan,
                       static_cast<int>(counts.first));
        RecordProperty(std::string("broke_") + plan,
                       static_cast<int>(counts.second));
        std::cout << "[churn-property] plan=" << plan << " held=" << counts.first
                  << " broke=" << counts.second << "\n";
    }
    EXPECT_EQ(total, kInstances);
    // Every instance must have produced a verdict with a finite utility.
    for (const auto& v : verdicts) {
        EXPECT_TRUE(std::isfinite(v.truth_utility));
    }
}

// ---- executor determinism under churn ---------------------------------------

std::string render_for_identity(const ProtocolOutcome& outcome) {
    std::ostringstream out;
    out.precision(17);
    out << outcome.terminated_early << "|" << outcome.termination_reason << "|"
        << outcome.makespan << "|" << outcome.user_paid << "|"
        << outcome.churn_dead << "|" << outcome.churn_realloc_blocks << "|";
    for (const auto& name : outcome.churn_excluded) out << name << ",";
    for (const auto& p : outcome.processors) {
        out << "|" << p.name << ":" << p.bid << ":" << p.payment << ":"
            << p.blocks_extra << ":" << p.excluded << ":" << p.fines;
    }
    out << "\n";
    return out.str();
}

TEST(ChurnProperty, ChurnBatchesAreJobsInvariant) {
    auto run_batch = [](std::size_t jobs) {
        obs::EventLog::instance().reset();
        obs::MetricsRegistry::global().clear();
        std::ostringstream jsonl;
        auto& log = obs::EventLog::instance();
        log.add_sink(std::make_shared<obs::JsonlSink>(jsonl));
        log.set_level(util::LogLevel::Debug);

        exec::RunExecutor pool({.jobs = jobs, .root_seed = 0xC4A11ull});
        const auto outcomes = pool.map(12, [&](exec::RunSlot& slot) {
            // Every batch element carries churn, alternating plan shapes and
            // drivers so the merge covers exclusion, realloc, and loss paths.
            const Instance inst = decode_instance((slot.index() * 4 + 1 +
                                                   slot.index() % 3) %
                                                  kInstances);
            auto config = instance_config(inst, slot.seed());
            const DriverKind driver =
                slot.index() % 2 == 0 ? DriverKind::kSim : DriverKind::kBus;
            return run_protocol(RunRequest{config, driver});
        });
        log.flush();
        log.reset();
        std::string rendered = jsonl.str();
        rendered += obs::MetricsRegistry::global().prometheus_text();
        for (const auto& outcome : outcomes) rendered += render_for_identity(outcome);
        obs::MetricsRegistry::global().clear();
        return rendered;
    };
    const std::string one = run_batch(1);
    const std::string two = run_batch(2);
    const std::string eight = run_batch(8);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

}  // namespace
}  // namespace dlsbl::protocol
