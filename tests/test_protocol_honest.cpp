// End-to-end tests of DLS-BL-NCP with every processor honest: the protocol
// must reproduce the analytic DLT schedule and the DLS-BL payments, levy no
// fines, keep the referee passive, and conserve money.
#include "protocol/detail/run_internals.hpp"
#include "protocol/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"
#include "mech/dls_bl.hpp"

namespace dlsbl::protocol {
namespace {

ProtocolConfig honest_config(dlt::NetworkKind kind, double z, std::vector<double> w,
                             std::size_t blocks = 1200) {
    ProtocolConfig config;
    config.kind = kind;
    config.z = z;
    config.true_w = std::move(w);
    config.block_count = blocks;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;  // speed
    return config;
}

class HonestRun : public ::testing::TestWithParam<dlt::NetworkKind> {};

INSTANTIATE_TEST_SUITE_P(NcpKinds, HonestRun,
                         ::testing::Values(dlt::NetworkKind::kNcpFE,
                                           dlt::NetworkKind::kNcpNFE),
                         [](const auto& param_info) {
                             return param_info.param == dlt::NetworkKind::kNcpFE ? "FE"
                                                                                 : "NFE";
                         });

TEST_P(HonestRun, CompletesWithoutFines) {
    const auto outcome =
        run_protocol(honest_config(GetParam(), 0.25, {1.0, 2.0, 1.5, 0.8}));
    EXPECT_FALSE(outcome.terminated_early) << outcome.termination_reason;
    EXPECT_EQ(outcome.ended_in, Phase::kDone);
    EXPECT_EQ(outcome.fined_count(), 0u);
    for (const auto& p : outcome.processors) {
        EXPECT_DOUBLE_EQ(p.fines, 0.0) << p.name;
        EXPECT_DOUBLE_EQ(p.rewards, 0.0) << p.name;
        EXPECT_TRUE(p.commenced_work) << p.name;
    }
}

TEST_P(HonestRun, SimulatedMakespanMatchesAnalyticOptimum) {
    const std::vector<double> w{1.0, 2.0, 1.5, 0.8};
    const double z = 0.25;
    const auto outcome = run_protocol(honest_config(GetParam(), z, w, 6000));
    dlt::ProblemInstance instance{GetParam(), z, w};
    const double analytic = dlt::optimal_makespan(instance);
    // Block rounding granularity bounds the gap: one block is 1/6000 load.
    EXPECT_NEAR(outcome.makespan, analytic, analytic * 5e-3);
}

TEST_P(HonestRun, PaymentsMatchCentralizedDlsBl) {
    const std::vector<double> w{1.3, 0.9, 2.1};
    const double z = 0.3;
    const auto outcome = run_protocol(honest_config(GetParam(), z, w, 3000));
    ASSERT_FALSE(outcome.terminated_early);

    const mech::DlsBl mechanism(GetParam(), z, w);
    const auto breakdown = mechanism.payments(std::span<const double>(w));
    for (std::size_t i = 0; i < w.size(); ++i) {
        // Block rounding perturbs the observed execution values slightly.
        EXPECT_NEAR(outcome.processors[i].payment, breakdown.payment[i],
                    0.01 * std::abs(breakdown.payment[i]) + 1e-3)
            << "P" << i + 1;
    }
}

TEST_P(HonestRun, TruthfulUtilitiesNonNegative) {
    const auto outcome =
        run_protocol(honest_config(GetParam(), 0.2, {1.0, 1.7, 2.4, 0.9, 1.2}, 4000));
    ASSERT_FALSE(outcome.terminated_early);
    for (const auto& p : outcome.processors) {
        EXPECT_GE(p.utility(), -1e-3) << p.name;  // tolerance = block rounding
    }
}

TEST_P(HonestRun, RefereeStaysPassive) {
    run_protocol(honest_config(GetParam(), 0.25, {1.0, 2.0}),
                 [](const RunInternals& internals) {
                     // No dispute ever forced bid disclosure.
                     EXPECT_TRUE(internals.referee.learned_bids().empty());
                     EXPECT_TRUE(internals.referee.fines().empty());
                     EXPECT_TRUE(internals.referee.settled());
                 });
}

TEST_P(HonestRun, LedgerConservation) {
    run_protocol(honest_config(GetParam(), 0.25, {1.0, 2.0, 3.0}),
                 [](const RunInternals& internals) {
                     EXPECT_NEAR(internals.context.ledger().total(), 0.0, 1e-9);
                     // The user paid exactly what the processors received.
                     double processors_sum = 0.0;
                     for (const auto& name : internals.context.processor_names()) {
                         processors_sum += internals.context.ledger().balance(name);
                     }
                     EXPECT_NEAR(
                         internals.context.ledger().balance(
                             internals.context.user_name()),
                         -processors_sum, 1e-9);
                 });
}

TEST_P(HonestRun, UserPaysSumOfPayments) {
    const auto outcome = run_protocol(honest_config(GetParam(), 0.25, {1.0, 2.0, 3.0}));
    double sum = 0.0;
    for (const auto& p : outcome.processors) sum += p.payment;
    EXPECT_NEAR(outcome.user_paid, sum, 1e-9);
}

TEST_P(HonestRun, CommunicationIsTwoMPlusTwoMessages) {
    // Happy path: m bid broadcasts + 1 meter broadcast + m payment vectors
    // + 1 settle broadcast.
    for (std::size_t m : {2u, 4u, 7u}) {
        std::vector<double> w(m, 1.0);
        for (std::size_t i = 0; i < m; ++i) w[i] = 1.0 + 0.1 * static_cast<double>(i);
        const auto outcome = run_protocol(honest_config(GetParam(), 0.2, w));
        EXPECT_EQ(outcome.control_messages, 2 * m + 2) << "m=" << m;
    }
}

TEST_P(HonestRun, PaymentPhaseDominatesBytes) {
    std::vector<double> w(8);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = 1.0 + 0.2 * static_cast<double>(i);
    const auto outcome = run_protocol(honest_config(GetParam(), 0.2, w));
    std::uint64_t payments = 0, total = 0;
    for (const auto& [phase, bytes] : outcome.bytes_by_phase) {
        total += bytes;
        if (phase == "ComputingPayments") payments += bytes;
    }
    EXPECT_GT(payments * 2, total);  // > 50 %
}

TEST_P(HonestRun, TwoProcessorsMinimal) {
    const auto outcome = run_protocol(honest_config(GetParam(), 0.1, {1.0, 1.0}));
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_NEAR(outcome.processors[0].alpha + outcome.processors[1].alpha, 1.0, 1e-12);
}

TEST_P(HonestRun, MerkleSignaturesEndToEnd) {
    // Same run with the real hash-based signature scheme.
    auto config = honest_config(GetParam(), 0.25, {1.0, 2.0});
    config.signature_algorithm = crypto::SignatureAlgorithm::kMerkle;
    config.mss_height = 3;
    const auto outcome = run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_EQ(outcome.fined_count(), 0u);
}

TEST(HonestRunMisc, DeterministicAcrossRuns) {
    const auto config = honest_config(dlt::NetworkKind::kNcpFE, 0.25, {1.0, 2.0, 1.5});
    const auto a = run_protocol(config);
    const auto b = run_protocol(config);
    ASSERT_EQ(a.processors.size(), b.processors.size());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.user_paid, b.user_paid);
    EXPECT_EQ(a.control_bytes, b.control_bytes);
    for (std::size_t i = 0; i < a.processors.size(); ++i) {
        EXPECT_EQ(a.processors[i].payment, b.processors[i].payment);
        EXPECT_EQ(a.processors[i].phi, b.processors[i].phi);
    }
}

TEST(HonestRunMisc, RejectsCpKind) {
    ProtocolConfig config;
    config.kind = dlt::NetworkKind::kCP;
    config.true_w = {1.0, 2.0};
    EXPECT_THROW(run_protocol(config), std::invalid_argument);
}

TEST(HonestRunMisc, RejectsSingleProcessor) {
    ProtocolConfig config;
    config.true_w = {1.0};
    EXPECT_THROW(run_protocol(config), std::invalid_argument);
}

TEST(HonestRunMisc, SlowExecutorIsNotFinedButEarnsLess) {
    // Running slower than bid is *not* a protocol offense; the payment rule
    // absorbs it (mechanism with verification).
    auto config = honest_config(dlt::NetworkKind::kNcpFE, 0.25, {1.0, 2.0, 1.5}, 3000);
    auto honest = run_protocol(config);
    config.strategies.assign(3, Strategy{});
    config.strategies[1].name = "slow";
    config.strategies[1].exec_factor = 1.5;
    auto slowed = run_protocol(config);
    EXPECT_FALSE(slowed.terminated_early);
    EXPECT_EQ(slowed.fined_count(), 0u);
    EXPECT_LT(slowed.processors[1].utility(), honest.processors[1].utility());
}

}  // namespace
}  // namespace dlsbl::protocol
