// exec::RunExecutor determinism contract: the same root seed must produce
// byte-identical artifacts — JSONL event logs, metric snapshots, rendered
// result tables — no matter how many workers the batch runs on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "agents/zoo.hpp"
#include "exec/executor.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "protocol/runner.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dlsbl {
namespace {

constexpr std::uint64_t kRootSeed = 0xD15Bull;

// Restores the event log and global metrics to their defaults around each
// batch so every jobs value starts from the same state.
void reset_observability() {
    obs::EventLog::instance().reset();
    obs::MetricsRegistry::global().clear();
}

protocol::ProtocolConfig small_config(std::uint64_t seed, std::size_t index) {
    protocol::ProtocolConfig config;
    config.kind = (index % 2 == 0) ? dlt::NetworkKind::kNcpFE : dlt::NetworkKind::kNcpNFE;
    config.z = 0.15 + 0.05 * static_cast<double>(index % 4);
    config.true_w = {1.0, 2.0 + 0.1 * static_cast<double>(index % 5), 1.5};
    config.block_count = 90;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    config.seed = seed;
    config.strategies.assign(config.true_w.size(), agents::truthful());
    return config;
}

// One full sweep: protocol runs fanned over the pool, events at Debug level
// into an in-memory JSONL sink, per-run metrics plus run_protocol's global
// counters. Returns every artifact the ISSUE's byte-identity clause names.
struct BatchArtifacts {
    std::string jsonl;
    std::string prometheus;
    std::string json_metrics;
    std::string table;
};

BatchArtifacts run_batch(std::size_t jobs, std::size_t count) {
    reset_observability();
    std::ostringstream jsonl_stream;
    auto sink = std::make_shared<obs::JsonlSink>(jsonl_stream);
    auto& log = obs::EventLog::instance();
    log.add_sink(sink);
    log.set_level(util::LogLevel::Debug);

    exec::RunExecutor pool({.jobs = jobs, .root_seed = kRootSeed});
    const auto outcomes = pool.map(count, [&](exec::RunSlot& slot) {
        // Per-run registry merged in submission order...
        slot.metrics().counter("sweep_runs_total").inc();
        slot.metrics()
            .histogram("sweep_draw", {0.25, 0.5, 0.75})
            .observe(slot.rng().uniform());
        // ...plus a run_summary event and global counters from the protocol.
        return protocol::run_protocol(small_config(slot.seed(), slot.index()));
    });
    log.flush();

    BatchArtifacts artifacts;
    artifacts.jsonl = jsonl_stream.str();
    artifacts.prometheus = obs::MetricsRegistry::global().prometheus_text();
    artifacts.json_metrics = obs::MetricsRegistry::global().json_snapshot();
    util::Table table({"run", "makespan", "user paid"});
    table.set_precision(9);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        table.add_numeric_row({static_cast<double>(i), outcomes[i].makespan,
                               outcomes[i].user_paid});
    }
    artifacts.table = table.render();

    log.remove_sink(sink);
    reset_observability();
    return artifacts;
}

TEST(ExecDeterminism, SeedDerivationIsPureAndDecorrelated) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t stream = 0; stream < 512; ++stream) {
        const std::uint64_t seed = util::derive_seed(kRootSeed, stream);
        EXPECT_EQ(seed, util::derive_seed(kRootSeed, stream));
        seen.insert(seed);
    }
    EXPECT_EQ(seen.size(), 512u) << "derived seeds collide across streams";
    EXPECT_NE(util::derive_seed(1, 0), util::derive_seed(2, 0));
}

TEST(ExecDeterminism, ArtifactsByteIdenticalAcrossJobCounts) {
    const std::size_t count = 24;
    const auto serial = run_batch(1, count);
    ASSERT_FALSE(serial.jsonl.empty()) << "batch produced no events";
    EXPECT_NE(serial.jsonl.find("run_summary"), std::string::npos);

    for (std::size_t jobs : {2u, 8u}) {
        const auto parallel = run_batch(jobs, count);
        EXPECT_EQ(serial.jsonl, parallel.jsonl) << "JSONL differs at jobs=" << jobs;
        EXPECT_EQ(serial.prometheus, parallel.prometheus)
            << "prometheus snapshot differs at jobs=" << jobs;
        EXPECT_EQ(serial.json_metrics, parallel.json_metrics)
            << "json snapshot differs at jobs=" << jobs;
        EXPECT_EQ(serial.table, parallel.table) << "table differs at jobs=" << jobs;
    }
}

TEST(ExecDeterminism, MapReturnsSubmissionOrder) {
    exec::RunExecutor pool({.jobs = 8, .root_seed = 7});
    const auto values = pool.map(200, [](exec::RunSlot& slot) {
        return std::make_pair(slot.index(), slot.seed());
    });
    ASSERT_EQ(values.size(), 200u);
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_EQ(values[i].first, i);
        EXPECT_EQ(values[i].second, util::derive_seed(7, i));
    }
}

TEST(ExecDeterminism, RunRngIndependentOfNeighbours) {
    // A run's random draws depend only on (root, index): dropping every
    // other run must not change the survivors' streams.
    exec::RunExecutor pool({.jobs = 4, .root_seed = 99});
    const auto full = pool.map(16, [](exec::RunSlot& slot) {
        auto rng = slot.rng();
        return rng.uniform();
    });
    for (std::size_t i = 0; i < 16; ++i) {
        auto rng = util::Xoshiro256{util::derive_seed(99, i)};
        EXPECT_EQ(full[i], rng.uniform());
    }
}

TEST(ExecDeterminism, NestedExecutorStaysDeterministic) {
    auto nested_batch = [&](std::size_t outer_jobs) {
        reset_observability();
        std::ostringstream stream;
        auto sink = std::make_shared<obs::JsonlSink>(stream);
        auto& log = obs::EventLog::instance();
        log.add_sink(sink);
        log.set_level(util::LogLevel::Info);
        exec::RunExecutor outer({.jobs = outer_jobs, .root_seed = 5});
        outer.for_each(4, [&](exec::RunSlot& slot) {
            exec::RunExecutor inner({.jobs = 2, .root_seed = slot.seed()});
            inner.for_each(3, [&](exec::RunSlot& inner_slot) {
                obs::Event event(util::LogLevel::Info, "test", "nested");
                event.uint("outer", slot.index()).uint("inner", inner_slot.index());
                log.emit(event);
            });
        });
        log.flush();
        log.remove_sink(sink);
        reset_observability();
        return stream.str();
    };
    const auto serial = nested_batch(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, nested_batch(4));
}

TEST(ExecDeterminism, FirstExceptionPropagates) {
    exec::RunExecutor pool({.jobs = 4, .root_seed = 3});
    EXPECT_THROW(pool.for_each(32,
                               [](exec::RunSlot& slot) {
                                   if (slot.index() == 17) {
                                       throw std::runtime_error("boom");
                                   }
                               }),
                 std::runtime_error);
    // The pool is reusable after a failed batch.
    const auto ok = pool.map(4, [](exec::RunSlot& slot) { return slot.index(); });
    EXPECT_EQ(ok.size(), 4u);
}

TEST(ExecDeterminism, JobsFromArgsParsesFlagAndFallback) {
    ::unsetenv("DLSBL_JOBS");
    const char* argv_jobs[] = {"prog", "--jobs", "6"};
    EXPECT_EQ(exec::RunExecutor::jobs_from_args(3, const_cast<char**>(argv_jobs)), 6u);
    const char* argv_short[] = {"prog", "-j", "2"};
    EXPECT_EQ(exec::RunExecutor::jobs_from_args(3, const_cast<char**>(argv_short)), 2u);
    const char* argv_none[] = {"prog"};
    EXPECT_EQ(exec::RunExecutor::jobs_from_args(1, const_cast<char**>(argv_none), 4), 4u);
}

}  // namespace
}  // namespace dlsbl
