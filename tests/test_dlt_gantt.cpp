#include "dlt/gantt.hpp"

#include <gtest/gtest.h>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"

namespace dlsbl::dlt {
namespace {

ProblemInstance make(NetworkKind kind, double z, std::vector<double> w) {
    ProblemInstance instance;
    instance.kind = kind;
    instance.z = z;
    instance.w = std::move(w);
    return instance;
}

TEST(Gantt, CpTimelinesMatchEquationOne) {
    const auto instance = make(NetworkKind::kCP, 0.5, {1.0, 2.0, 3.0});
    const LoadAllocation alpha{0.5, 0.3, 0.2};
    const auto timelines = build_timelines(instance, alpha);
    ASSERT_EQ(timelines.size(), 3u);
    // Bus is serial and starts at t=0 (one-port model).
    double bus = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(timelines[i].comm_start, bus);
        bus += instance.z * alpha[i];
        EXPECT_DOUBLE_EQ(timelines[i].comm_end, bus);
        EXPECT_DOUBLE_EQ(timelines[i].compute_start, timelines[i].comm_end);
        EXPECT_DOUBLE_EQ(timelines[i].compute_end,
                         timelines[i].compute_start + alpha[i] * instance.w[i]);
    }
    // compute_end must equal T_i from eq (1).
    const auto t = finishing_times(instance, alpha);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(timelines[i].compute_end, t[i]);
    }
}

TEST(Gantt, NcpFeLoadOriginComputesFromZero) {
    const auto instance = make(NetworkKind::kNcpFE, 0.5, {1.0, 2.0, 3.0});
    const auto alpha = optimal_allocation(instance);
    const auto timelines = build_timelines(instance, alpha);
    EXPECT_DOUBLE_EQ(timelines[0].comm_start, timelines[0].comm_end);  // no comm
    EXPECT_DOUBLE_EQ(timelines[0].compute_start, 0.0);                  // Figure 2
    // Bus carries only α_2 z onward.
    EXPECT_DOUBLE_EQ(timelines[1].comm_start, 0.0);
    EXPECT_NEAR(timelines[1].comm_end, instance.z * alpha[1], 1e-15);
    const auto t = finishing_times(instance, alpha);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(timelines[i].compute_end, t[i], 1e-12);
}

TEST(Gantt, NcpNfeLoadOriginComputesLast) {
    const auto instance = make(NetworkKind::kNcpNFE, 0.5, {1.0, 2.0, 3.0});
    const auto alpha = optimal_allocation(instance);
    const auto timelines = build_timelines(instance, alpha);
    const double all_comm = instance.z * (alpha[0] + alpha[1]);
    EXPECT_NEAR(timelines[2].compute_start, all_comm, 1e-15);  // Figure 3
    const auto t = finishing_times(instance, alpha);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(timelines[i].compute_end, t[i], 1e-12);
}

TEST(Gantt, OptimalTimelinesEndTogether) {
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const auto instance = make(kind, 0.3, {1.0, 2.0, 1.5, 0.8});
        const auto alpha = optimal_allocation(instance);
        const auto timelines = build_timelines(instance, alpha);
        for (std::size_t i = 1; i < timelines.size(); ++i) {
            EXPECT_NEAR(timelines[i].compute_end, timelines[0].compute_end, 1e-10)
                << to_string(kind);
        }
    }
}

TEST(Gantt, RenderContainsBusAndProcessors) {
    const auto instance = make(NetworkKind::kCP, 0.5, {1.0, 2.0});
    const auto alpha = optimal_allocation(instance);
    const std::string fig = render_figure(instance, alpha);
    EXPECT_NE(fig.find("BUS"), std::string::npos);
    EXPECT_NE(fig.find("P1"), std::string::npos);
    EXPECT_NE(fig.find("P2"), std::string::npos);
    EXPECT_NE(fig.find('#'), std::string::npos);
    EXPECT_NE(fig.find('-'), std::string::npos);
}

TEST(Gantt, SizeMismatchThrows) {
    const auto instance = make(NetworkKind::kCP, 0.5, {1.0, 2.0});
    EXPECT_THROW(build_timelines(instance, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace dlsbl::dlt
