#include "dlt/optimality.hpp"
#include "dlt/sequencing.hpp"

#include <gtest/gtest.h>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"

namespace dlsbl::dlt {
namespace {

ProblemInstance make(NetworkKind kind, double z, std::vector<double> w) {
    ProblemInstance instance;
    instance.kind = kind;
    instance.z = z;
    instance.w = std::move(w);
    return instance;
}

TEST(Optimality, ResidualZeroAtOptimum) {
    const auto instance = make(NetworkKind::kNcpFE, 0.4, {1.0, 2.0, 3.0});
    EXPECT_NEAR(equal_finish_residual(instance, optimal_allocation(instance)), 0.0,
                1e-12);
}

TEST(Optimality, ResidualPositiveOffOptimum) {
    const auto instance = make(NetworkKind::kNcpFE, 0.4, {1.0, 2.0, 3.0});
    EXPECT_GT(equal_finish_residual(instance, {0.5, 0.3, 0.2}), 1e-3);
}

TEST(Optimality, PerturbationsNeverBeatClosedForm) {
    util::Xoshiro256 rng{7};
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const auto instance = make(kind, 0.35, {1.0, 2.7, 0.6, 3.3, 1.4});
        const auto report = perturbation_dominance(instance, 2000, rng);
        EXPECT_EQ(report.violations, 0u) << to_string(kind)
                                         << " worst=" << report.worst_margin;
        EXPECT_EQ(report.trials, 2000u);
    }
}

TEST(Optimality, PerturbationDominanceAcrossCommRange) {
    // For NCP-NFE, equal-finish is optimal exactly in the full-participation
    // regime z <= w_m (here w_m = 3). Outside it, moving load back to the
    // front-end-less LO beats the closed form — the condition the paper's
    // Theorem 2.1 implicitly assumes.
    util::Xoshiro256 rng{13};
    for (double z : {0.0, 0.05, 0.5, 2.0, 10.0}) {
        const auto instance = make(NetworkKind::kNcpNFE, z, {2.0, 1.0, 1.5, 3.0});
        const auto report = perturbation_dominance(instance, 500, rng);
        if (full_participation_optimal(instance)) {
            EXPECT_EQ(report.violations, 0u) << "z=" << z;
        } else {
            EXPECT_GT(report.violations, 0u) << "z=" << z;
        }
    }
}

TEST(Optimality, FullParticipationCondition) {
    // CP and NCP-FE: optimal for every z.
    EXPECT_TRUE(full_participation_optimal(make(NetworkKind::kCP, 100.0, {1.0, 2.0})));
    EXPECT_TRUE(
        full_participation_optimal(make(NetworkKind::kNcpFE, 100.0, {1.0, 2.0})));
    // NCP-NFE: z <= w_m.
    EXPECT_TRUE(
        full_participation_optimal(make(NetworkKind::kNcpNFE, 2.0, {1.0, 3.0})));
    EXPECT_TRUE(
        full_participation_optimal(make(NetworkKind::kNcpNFE, 3.0, {1.0, 3.0})));
    EXPECT_FALSE(
        full_participation_optimal(make(NetworkKind::kNcpNFE, 3.1, {1.0, 3.0})));
}

TEST(Optimality, NfeOutsideRegimeLoBeatsClosedForm) {
    // Direct witness: with z > w_m, giving everything to the LO beats the
    // equal-finish allocation.
    const auto instance = make(NetworkKind::kNcpNFE, 10.0, {1.0, 1.0});
    const double closed = optimal_makespan(instance);
    const double lo_only = makespan(instance, {0.0, 1.0});
    EXPECT_LT(lo_only, closed);
}

TEST(Sequencing, RemoveProcessorShrinksSystem) {
    const auto instance = make(NetworkKind::kNcpFE, 0.4, {1.0, 2.0, 3.0});
    const auto reduced = remove_processor(instance, 1);
    ASSERT_EQ(reduced.w.size(), 2u);
    EXPECT_DOUBLE_EQ(reduced.w[0], 1.0);
    EXPECT_DOUBLE_EQ(reduced.w[1], 3.0);
    EXPECT_EQ(reduced.kind, NetworkKind::kNcpFE);
}

TEST(Sequencing, RemovingLoadOriginBecomesCp) {
    // NCP-FE: LO is P_1; removing it leaves the data holder as distributor
    // only, which is the CP configuration.
    const auto fe = make(NetworkKind::kNcpFE, 0.4, {1.0, 2.0, 3.0});
    EXPECT_EQ(remove_processor(fe, 0).kind, NetworkKind::kCP);
    // NCP-NFE: LO is P_m.
    const auto nfe = make(NetworkKind::kNcpNFE, 0.4, {1.0, 2.0, 3.0});
    EXPECT_EQ(remove_processor(nfe, 2).kind, NetworkKind::kCP);
    EXPECT_EQ(remove_processor(nfe, 0).kind, NetworkKind::kNcpNFE);
}

TEST(Sequencing, RemoveValidation) {
    const auto instance = make(NetworkKind::kCP, 0.4, {1.0});
    EXPECT_THROW(remove_processor(instance, 0), std::invalid_argument);
    const auto two = make(NetworkKind::kCP, 0.4, {1.0, 2.0});
    EXPECT_THROW(remove_processor(two, 2), std::out_of_range);
}

TEST(Sequencing, LeaveOneOutIncreasesMakespan) {
    // Theorem 2.1 says all processors participate at the optimum, so
    // removing any one must not help.
    const auto instance = make(NetworkKind::kNcpFE, 0.3, {1.0, 2.0, 1.5, 2.5});
    const double full = optimal_makespan(instance);
    for (std::size_t i = 0; i < instance.w.size(); ++i) {
        EXPECT_GE(leave_one_out_makespan(instance, i), full - 1e-12) << i;
    }
}

TEST(Sequencing, PermutationInvarianceTheorem22) {
    for (NetworkKind kind :
         {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const auto instance = make(kind, 0.45, {1.0, 2.0, 0.5, 3.0, 1.2});
        const auto study = makespan_over_permutations(instance, 40, 99);
        EXPECT_EQ(study.makespans.size(), 40u);
        EXPECT_NEAR(study.max, study.min, 1e-10 * study.max) << to_string(kind);
    }
}

TEST(Sequencing, PermutationStudyKeepsOptimal) {
    const auto instance = make(NetworkKind::kCP, 0.45, {1.0, 2.0, 3.0});
    const auto study = makespan_over_permutations(instance, 10, 1);
    EXPECT_NEAR(study.makespans[0], optimal_makespan(instance), 1e-12);
}

}  // namespace
}  // namespace dlsbl::dlt
