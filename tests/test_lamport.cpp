#include "crypto/lamport.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace dlsbl::crypto {
namespace {

Digest seed(int n) {
    return Sha256::hash("lamport-test-seed-" + std::to_string(n));
}

TEST(Lamport, SignVerifyRoundTrip) {
    LamportKeyPair key(seed(1));
    const util::Bytes msg = util::to_bytes("bid: 1.25 from P3");
    const LamportSignature sig = key.sign(msg);
    EXPECT_TRUE(LamportKeyPair::verify(key.public_key(), msg, sig));
}

TEST(Lamport, RejectsTamperedMessage) {
    LamportKeyPair key(seed(2));
    const util::Bytes msg = util::to_bytes("bid: 1.25 from P3");
    const LamportSignature sig = key.sign(msg);
    util::Bytes tampered = msg;
    tampered[5] ^= 0x01;
    EXPECT_FALSE(LamportKeyPair::verify(key.public_key(), tampered, sig));
}

TEST(Lamport, RejectsWrongKey) {
    LamportKeyPair alice(seed(3));
    LamportKeyPair bob(seed(4));
    const util::Bytes msg = util::to_bytes("payment vector");
    const LamportSignature sig = alice.sign(msg);
    EXPECT_FALSE(LamportKeyPair::verify(bob.public_key(), msg, sig));
}

TEST(Lamport, RejectsTamperedSignature) {
    LamportKeyPair key(seed(5));
    const util::Bytes msg = util::to_bytes("allocation");
    LamportSignature sig = key.sign(msg);
    sig.revealed[17][0] ^= 0xff;
    EXPECT_FALSE(LamportKeyPair::verify(key.public_key(), msg, sig));
    LamportSignature sig2 = key.sign(msg);
    sig2.counterpart[200][31] ^= 0x80;
    EXPECT_FALSE(LamportKeyPair::verify(key.public_key(), msg, sig2));
}

TEST(Lamport, DeterministicKeyFromSeed) {
    LamportKeyPair a(seed(6));
    LamportKeyPair b(seed(6));
    EXPECT_EQ(a.public_key(), b.public_key());
    LamportKeyPair c(seed(7));
    EXPECT_NE(a.public_key(), c.public_key());
}

TEST(Lamport, SerializationRoundTrip) {
    LamportKeyPair key(seed(8));
    const util::Bytes msg = util::to_bytes("serialize me");
    const LamportSignature sig = key.sign(msg);
    const util::Bytes wire = sig.serialize();
    EXPECT_EQ(wire.size(), 2u * 256u * 32u);
    const auto parsed = LamportSignature::deserialize(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(LamportKeyPair::verify(key.public_key(), msg, *parsed));
}

TEST(Lamport, DeserializeRejectsBadLength) {
    EXPECT_FALSE(LamportSignature::deserialize(util::Bytes(100, 0)).has_value());
    EXPECT_FALSE(LamportSignature::deserialize(util::Bytes{}).has_value());
}

TEST(Lamport, SignatureDependsOnMessage) {
    LamportKeyPair key(seed(9));
    const LamportSignature s1 = key.sign(util::to_bytes("m1"));
    const LamportSignature s2 = key.sign(util::to_bytes("m2"));
    EXPECT_NE(s1.serialize(), s2.serialize());
}

TEST(Lamport, EmptyMessageSigns) {
    LamportKeyPair key(seed(10));
    const util::Bytes empty;
    const LamportSignature sig = key.sign(empty);
    EXPECT_TRUE(LamportKeyPair::verify(key.public_key(), empty, sig));
}

}  // namespace
}  // namespace dlsbl::crypto
