// Acceptance tests for the observability layer wired through a full
// protocol run (ISSUE: one honest run with the JSONL sink, profiler and
// catapult export active must produce artifacts that (a) re-parse line by
// line, (b) match the Gantt reconstruction exactly, and (c) agree with
// NetworkMetrics::by_phase()).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "agents/zoo.hpp"
#include "crypto/mss.hpp"
#include "obs/catapult.hpp"
#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/sim_bridge.hpp"
#include "protocol/detail/run_internals.hpp"
#include "protocol/runner.hpp"
#include "util/chart.hpp"

namespace dlsbl {
namespace {

protocol::ProtocolConfig honest_config() {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpFE;
    config.z = 0.25;
    config.true_w = {1.0, 2.0, 1.5, 0.8};
    config.block_count = 800;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    return config;
}

struct RunArtifacts {
    std::string jsonl;
    std::string catapult;
    std::string metrics;
    std::vector<util::GanttBar> bars;
    std::map<std::string, sim::PhaseCounters> by_phase;
    bool settled = false;
};

// One honest run with every observability surface active.
RunArtifacts run_with_observability() {
    auto& log = obs::EventLog::instance();
    log.reset();
    std::ostringstream jsonl_stream;
    auto sink = std::make_shared<obs::JsonlSink>(jsonl_stream);
    log.add_sink(sink);
    log.set_level(util::LogLevel::Debug);

    auto& profiler = obs::Profiler::instance();
    profiler.reset();
    profiler.set_enabled(true);

    RunArtifacts artifacts;
    const auto outcome = protocol::run_protocol(
        honest_config(), [&](const protocol::RunInternals& internals) {
            const auto& trace = internals.trace();
            artifacts.catapult = obs::catapult_from_trace(trace);
            artifacts.bars = sim::gantt_from_trace(trace);
            artifacts.metrics = internals.context.metrics_registry().prometheus_text();
            artifacts.by_phase = internals.network_metrics().by_phase();
        });
    artifacts.settled = !outcome.terminated_early;

    profiler.set_enabled(false);
    log.flush();
    log.reset();
    artifacts.jsonl = jsonl_stream.str();
    return artifacts;
}

TEST(ObsProtocol, JsonlRoundTripsLineByLine) {
    const auto artifacts = run_with_observability();
    ASSERT_TRUE(artifacts.settled);
    ASSERT_FALSE(artifacts.jsonl.empty());

    std::size_t lines = 0;
    std::istringstream in(artifacts.jsonl);
    for (std::string line; std::getline(in, line);) {
        ++lines;
        const auto doc = obs::json_parse(line);
        ASSERT_TRUE(doc.has_value()) << "line " << lines << ": " << line;
        ASSERT_EQ(doc->kind, obs::JsonValue::Kind::kObject);
        // Schema version is the first field of every record.
        ASSERT_FALSE(doc->object.empty());
        EXPECT_EQ(doc->object[0].first, "v");
        EXPECT_DOUBLE_EQ(doc->object[0].second.number, obs::Event::kSchemaVersion);
        ASSERT_NE(doc->find("component"), nullptr);
        ASSERT_NE(doc->find("event"), nullptr);
    }
    // Phase transitions alone give several debug events.
    EXPECT_GE(lines, 5u);
    EXPECT_NE(artifacts.jsonl.find("\"event\":\"phase_change\""), std::string::npos);
    EXPECT_NE(artifacts.jsonl.find("\"event\":\"run_summary\""), std::string::npos);
}

TEST(ObsProtocol, CatapultSpansMatchGanttBarsExactly) {
    const auto artifacts = run_with_observability();
    const auto doc = obs::json_parse(artifacts.catapult);
    ASSERT_TRUE(doc.has_value());
    const auto* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    // tid -> lane name from the metadata events.
    std::map<double, std::string> lane_of;
    for (const auto& event : events->array) {
        if (event.find("ph")->string == "M" &&
            event.find("name")->string == "thread_name") {
            lane_of[event.find("tid")->number] = event.find("args")->find("name")->string;
        }
    }

    // Every "X" event must equal one Gantt bar: same lane, ts == start,
    // ts + dur == end (exact — both sides come through json_number).
    std::vector<util::GanttBar> remaining = artifacts.bars;
    std::size_t spans = 0;
    for (const auto& event : events->array) {
        if (event.find("ph")->string != "X") continue;
        ++spans;
        const std::string& lane = lane_of.at(event.find("tid")->number);
        const double start = event.find("ts")->number / 1e6;
        const double end = start + event.find("dur")->number / 1e6;
        bool matched = false;
        for (auto it = remaining.begin(); it != remaining.end(); ++it) {
            if (it->lane == lane && it->start == start && it->end == end) {
                remaining.erase(it);
                matched = true;
                break;
            }
        }
        EXPECT_TRUE(matched) << lane << " [" << start << ", " << end << "]";
    }
    EXPECT_EQ(spans, artifacts.bars.size());
    EXPECT_TRUE(remaining.empty());
    EXPECT_GE(spans, 4u);  // 3 transfers + >= 1 compute span in the honest run
}

TEST(ObsProtocol, MetricsDumpEqualsNetworkByPhase) {
    const auto artifacts = run_with_observability();
    ASSERT_FALSE(artifacts.by_phase.empty());

    for (const auto& [phase, counters] : artifacts.by_phase) {
        const std::string messages_series = std::string(obs::kControlMessagesMetric) +
                                            "{phase=\"" + phase + "\"} " +
                                            std::to_string(counters.messages);
        const std::string bytes_series = std::string(obs::kControlBytesMetric) +
                                         "{phase=\"" + phase + "\"} " +
                                         std::to_string(counters.bytes);
        EXPECT_NE(artifacts.metrics.find(messages_series), std::string::npos)
            << "missing: " << messages_series << "\n" << artifacts.metrics;
        EXPECT_NE(artifacts.metrics.find(bytes_series), std::string::npos)
            << "missing: " << bytes_series << "\n" << artifacts.metrics;
    }
}

TEST(ObsProtocol, ProfilerSawTheWiredScopes) {
    const auto artifacts = run_with_observability();
    ASSERT_TRUE(artifacts.settled);
    auto& profiler = obs::Profiler::instance();
    // run_with_observability leaves the recorded tree in place (reset is at
    // the *start* of the next run).
    EXPECT_EQ(profiler.total_calls("protocol_run"), 1u);
    EXPECT_EQ(profiler.total_calls("sim_event_loop"), 1u);
    EXPECT_GE(profiler.total_calls("allocation_solve"), 1u);
    profiler.reset();

    // The hash-based signature scopes only fire under the MSS algorithm
    // (honest_config uses kFast); exercise them directly.
    profiler.set_enabled(true);
    {
        crypto::Digest seed{};
        crypto::MssKeyPair keys(seed, /*height=*/2, crypto::OtsScheme::kWots);
        const std::uint8_t message[] = {1, 2, 3};
        const auto signature = keys.sign(message);
        EXPECT_TRUE(crypto::MssKeyPair::verify(keys.public_key(), message, signature));
    }
    profiler.set_enabled(false);
    EXPECT_EQ(profiler.total_calls("mss_keygen"), 1u);
    EXPECT_EQ(profiler.total_calls("mss_sign"), 1u);
    EXPECT_EQ(profiler.total_calls("mss_verify"), 1u);
    EXPECT_GE(profiler.total_calls("wots_sign"), 1u);
    profiler.reset();
}

TEST(ObsProtocol, IdenticalSeedsProduceByteIdenticalArtifacts) {
    const auto first = run_with_observability();
    const auto second = run_with_observability();
    EXPECT_EQ(first.jsonl, second.jsonl);
    EXPECT_EQ(first.catapult, second.catapult);
    EXPECT_EQ(first.metrics, second.metrics);
}

TEST(ObsProtocol, JsonlCarriesCausalSpanFields) {
    const auto artifacts = run_with_observability();
    ASSERT_TRUE(artifacts.settled);

    // Collect the span graph from the JSONL: every record's optional
    // trace/span/parent fields (schema v2).
    std::set<double> traces;
    std::set<double> spans;
    std::set<double> parents;
    std::size_t span_begins = 0;
    std::istringstream in(artifacts.jsonl);
    for (std::string line; std::getline(in, line);) {
        const auto doc = obs::json_parse(line);
        ASSERT_TRUE(doc.has_value());
        const auto* trace = doc->find("trace");
        const auto* span = doc->find("span");
        if (span != nullptr) {
            ASSERT_NE(trace, nullptr) << line;  // span implies trace
            traces.insert(trace->number);
            spans.insert(span->number);
            EXPECT_GT(span->number, 0.0);
        }
        if (const auto* parent = doc->find("parent"); parent != nullptr) {
            ASSERT_NE(span, nullptr) << line;  // parent implies span
            parents.insert(parent->number);
        }
        if (const auto* event = doc->find("event");
            event != nullptr && event->string == "span_begin") {
            ++span_begins;
        }
    }
    // One run = one trace id; a real span tree underneath.
    EXPECT_EQ(traces.size(), 1u);
    EXPECT_GE(span_begins, 8u) << "run + phases + per-processor spans";
    // Causal closure: every referenced parent is itself a known span.
    for (const double parent : parents) {
        EXPECT_TRUE(spans.contains(parent)) << "dangling parent " << parent;
    }
    // The tree includes the protocol-level span names.
    for (const char* name :
         {"\"name\":\"run\"", "\"name\":\"phase:Bidding\"", "\"name\":\"msg:bid\"",
          "\"name\":\"verify_blocks\"", "\"name\":\"compute\""}) {
        EXPECT_NE(artifacts.jsonl.find(name), std::string::npos) << name;
    }
}

TEST(ObsProtocol, CatapultRendersSpanTreeAndCrossTrackFlows) {
    const auto artifacts = run_with_observability();
    const auto doc = obs::json_parse(artifacts.catapult);
    ASSERT_TRUE(doc.has_value());
    const auto* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::map<double, std::size_t> async_begin;  // span id -> count
    std::map<double, std::size_t> async_end;
    std::map<double, std::vector<const obs::JsonValue*>> flows;  // edge id
    for (const auto& event : events->array) {
        const std::string& ph = event.find("ph")->string;
        if (ph == "b") ++async_begin[event.find("id")->number];
        if (ph == "e") ++async_end[event.find("id")->number];
        if (ph == "s" || ph == "f") {
            flows[event.find("id")->number].push_back(&event);
        }
    }
    // Every async span opens and closes exactly once per id.
    ASSERT_GE(async_begin.size(), 8u);
    EXPECT_EQ(async_begin.size(), async_end.size());
    for (const auto& [id, count] : async_begin) {
        EXPECT_EQ(count, 1u) << "span " << id;
        EXPECT_EQ(async_end[id], 1u) << "span " << id;
    }
    // Flow arrows come in s/f pairs that cross tracks (that is their job:
    // sender's ship span -> receiver's verification/compute work).
    ASSERT_FALSE(flows.empty());
    std::size_t cross_track = 0;
    for (const auto& [id, pair] : flows) {
        ASSERT_EQ(pair.size(), 2u) << "edge " << id;
        EXPECT_EQ(pair[0]->find("ph")->string, "s");
        EXPECT_EQ(pair[1]->find("ph")->string, "f");
        if (pair[0]->find("tid")->number != pair[1]->find("tid")->number) {
            ++cross_track;
        }
    }
    EXPECT_GE(cross_track, 3u);  // at least the three load shipments
}

TEST(ObsProtocol, RefereeCountersStayZeroInHonestRuns) {
    std::string metrics;
    protocol::run_protocol(honest_config(),
                           [&](const protocol::RunInternals& internals) {
                               metrics =
                                   internals.context.metrics_registry().prometheus_text();
                           });
    // The referee is passive when nobody cheats: no fines, no disputes.
    EXPECT_EQ(metrics.find("dlsbl_referee_fines_total"), std::string::npos);
    EXPECT_EQ(metrics.find("dlsbl_referee_disputes_opened_total"), std::string::npos);
}

TEST(ObsProtocol, RefereeCountersRecordCheatersVerdict) {
    auto config = honest_config();
    config.strategies.assign(config.true_w.size(), agents::truthful());
    config.strategies[1] = agents::payment_cheater();

    std::string metrics;
    const auto outcome = protocol::run_protocol(
        config, [&](const protocol::RunInternals& internals) {
            metrics = internals.context.metrics_registry().prometheus_text();
        });
    ASSERT_FALSE(outcome.terminated_early);  // payment verdicts do not abort

    EXPECT_NE(metrics.find("dlsbl_referee_fines_total 1"), std::string::npos)
        << metrics;
    EXPECT_NE(
        metrics.find("dlsbl_referee_disputes_opened_total{kind=\"payment\"} 1"),
        std::string::npos)
        << metrics;
    EXPECT_NE(
        metrics.find("dlsbl_referee_disputes_resolved_total{kind=\"payment\"} 1"),
        std::string::npos)
        << metrics;
}

TEST(ObsProtocol, RefereeCountersRecordUnfoundedAccusation) {
    auto config = honest_config();
    config.strategies.assign(config.true_w.size(), agents::truthful());
    config.strategies[2] = agents::false_accuser();

    std::string metrics;
    protocol::run_protocol(config, [&](const protocol::RunInternals& internals) {
        metrics = internals.context.metrics_registry().prometheus_text();
    });
    EXPECT_NE(metrics.find("dlsbl_referee_accusations_total{type=\"double-bid\","
                           "verdict=\"unfounded\"} 1"),
              std::string::npos)
        << metrics;
    EXPECT_NE(metrics.find("dlsbl_referee_fines_total 1"), std::string::npos)
        << metrics;
}

}  // namespace
}  // namespace dlsbl
