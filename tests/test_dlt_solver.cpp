#include "dlt/linear_solver.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"
#include "util/rng.hpp"

namespace dlsbl::dlt {
namespace {

TEST(LinearSolver, SolvesKnownSystem) {
    // [2 1; 1 3] x = [5; 10]  =>  x = [1, 3]
    const auto x = solve_linear_system({2.0, 1.0, 1.0, 3.0}, {5.0, 10.0}, 2);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolver, PivotingHandlesZeroDiagonal) {
    // [0 1; 1 0] x = [2; 3]  =>  x = [3, 2]
    const auto x = solve_linear_system({0.0, 1.0, 1.0, 0.0}, {2.0, 3.0}, 2);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinearSolver, SingularThrows) {
    EXPECT_THROW(solve_linear_system({1.0, 2.0, 2.0, 4.0}, {1.0, 2.0}, 2),
                 std::domain_error);
}

TEST(LinearSolver, DimensionMismatchThrows) {
    EXPECT_THROW(solve_linear_system({1.0, 2.0}, {1.0}, 2), std::invalid_argument);
    EXPECT_THROW(solve_linear_system({1.0}, {1.0, 2.0}, 1), std::invalid_argument);
}

TEST(LinearSolver, RandomSystemsRoundTrip) {
    util::Xoshiro256 rng{2024};
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + trial % 8;
        std::vector<double> a(n * n), x_true(n), b(n, 0.0);
        for (auto& v : a) v = rng.uniform(-2.0, 2.0);
        for (auto& v : x_true) v = rng.uniform(-5.0, 5.0);
        for (std::size_t i = 0; i < n; ++i) {
            a[i * n + i] += 4.0;  // diagonally dominant => nonsingular
            for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
        }
        const auto x = solve_linear_system(a, b, n);
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
    }
}

class SolverVsClosedForm
    : public ::testing::TestWithParam<std::tuple<NetworkKind, int>> {};

INSTANTIATE_TEST_SUITE_P(AllKindsAndSizes, SolverVsClosedForm,
                         ::testing::Combine(::testing::Values(NetworkKind::kCP,
                                                              NetworkKind::kNcpFE,
                                                              NetworkKind::kNcpNFE),
                                            ::testing::Values(1, 2, 3, 4, 7, 12, 25)));

TEST_P(SolverVsClosedForm, IndependentDerivationsAgree) {
    const auto [kind, m] = GetParam();
    util::Xoshiro256 rng{static_cast<std::uint64_t>(m) * 31 +
                         static_cast<std::uint64_t>(kind)};
    for (int trial = 0; trial < 20; ++trial) {
        ProblemInstance instance;
        instance.kind = kind;
        instance.z = rng.uniform(0.01, 3.0);
        instance.w.resize(static_cast<std::size_t>(m));
        for (double& wi : instance.w) wi = rng.uniform(0.2, 9.0);

        const auto closed = optimal_allocation(instance);
        const auto solved = optimal_allocation_by_solver(instance);
        ASSERT_EQ(closed.size(), solved.size());
        for (std::size_t i = 0; i < closed.size(); ++i) {
            EXPECT_NEAR(closed[i], solved[i], 1e-9) << "i=" << i;
        }
    }
}

TEST(SolverOptimal, EqualFinishHolds) {
    ProblemInstance instance;
    instance.kind = NetworkKind::kNcpNFE;
    instance.z = 0.8;
    instance.w = {2.0, 1.0, 3.0, 1.5, 2.5};
    const auto alpha = optimal_allocation_by_solver(instance);
    const auto t = finishing_times(instance, alpha);
    for (double ti : t) EXPECT_NEAR(ti, t[0], 1e-10);
}

}  // namespace
}  // namespace dlsbl::dlt
