// Speedup/efficiency/asymptote analysis + exact-rational certificates for
// the star and linear closed forms.
#include <gtest/gtest.h>

#include "dlt/analysis.hpp"
#include "dlt/closed_form.hpp"
#include "dlt/finish_time.hpp"
#include "dlt/linear.hpp"
#include "dlt/star.hpp"
#include "util/rational.hpp"

namespace dlsbl::dlt {
namespace {

using util::Rational;

TEST(Analysis, SingleProcessorTime) {
    ProblemInstance cp{NetworkKind::kCP, 0.5, {2.0, 1.0, 3.0}};
    EXPECT_DOUBLE_EQ(single_processor_time(cp), 0.5 + 1.0);
    ProblemInstance fe{NetworkKind::kNcpFE, 0.5, {2.0, 1.0, 3.0}};
    EXPECT_DOUBLE_EQ(single_processor_time(fe), 1.0);
}

TEST(Analysis, SpeedupBounds) {
    for (auto kind : {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        for (std::size_t m : {1u, 2u, 4u, 16u}) {
            ProblemInstance instance{kind, 0.2, std::vector<double>(m, 1.0)};
            const double s = speedup(instance);
            EXPECT_GE(s, 1.0 - 1e-12) << to_string(kind) << " m=" << m;
            EXPECT_LE(s, static_cast<double>(m) + 1e-9) << to_string(kind);
        }
    }
}

TEST(Analysis, EfficiencyDecreasesWithM) {
    double previous = 2.0;
    for (std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
        ProblemInstance instance{NetworkKind::kNcpFE, 0.2, std::vector<double>(m, 1.0)};
        const double e = efficiency(instance);
        EXPECT_LT(e, previous);
        previous = e;
    }
}

TEST(Analysis, AsymptoteFormulae) {
    EXPECT_DOUBLE_EQ(asymptotic_makespan(NetworkKind::kCP, 0.5, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(asymptotic_makespan(NetworkKind::kNcpFE, 0.5, 1.0),
                     0.5 * 1.0 / 1.5);
    EXPECT_DOUBLE_EQ(asymptotic_makespan(NetworkKind::kNcpNFE, 0.5, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(asymptotic_makespan(NetworkKind::kCP, 0.0, 1.0), 0.0);
    EXPECT_THROW(asymptotic_makespan(NetworkKind::kNcpNFE, 2.0, 1.0),
                 std::domain_error);
    EXPECT_THROW(asymptotic_makespan(NetworkKind::kCP, 0.5, 0.0),
                 std::invalid_argument);
}

TEST(Analysis, MakespanConvergesToAsymptote) {
    for (auto kind : {NetworkKind::kCP, NetworkKind::kNcpFE, NetworkKind::kNcpNFE}) {
        const double limit = asymptotic_makespan(kind, 0.3, 1.0);
        double previous_gap = 1e18;
        for (std::size_t m : {2u, 8u, 32u, 128u}) {
            ProblemInstance instance{kind, 0.3, std::vector<double>(m, 1.0)};
            const double gap = optimal_makespan(instance) - limit;
            EXPECT_GE(gap, -1e-9) << to_string(kind) << " m=" << m;
            EXPECT_LT(gap, previous_gap) << to_string(kind) << " m=" << m;
            previous_gap = gap;
        }
        EXPECT_LT(previous_gap, 0.02);  // within 2% by m = 128
    }
}

TEST(Analysis, SaturationSizeOrdering) {
    // Cheaper communication -> more processors remain useful.
    const auto fast = saturation_size(NetworkKind::kNcpFE, 0.05, 1.0);
    const auto slow = saturation_size(NetworkKind::kNcpFE, 0.5, 1.0);
    EXPECT_GT(fast, slow);
    EXPECT_GE(slow, 1u);
}

// ---- exact-rational star and linear closed forms ------------------------------

TEST(ExactExtensions, StarEqualFinishExact) {
    const std::vector<Rational> z{Rational::parse("1/10"), Rational::parse("2/5"),
                                  Rational::parse("3/10"), Rational::parse("1/5")};
    const std::vector<Rational> w{Rational::parse("1"), Rational::parse("2"),
                                  Rational::parse("3/2"), Rational::parse("4/5")};
    const auto alpha = star_optimal_allocation_generic<Rational>(
        std::span<const Rational>(z), std::span<const Rational>(w));
    Rational sum;
    for (const auto& a : alpha) sum += a;
    EXPECT_EQ(sum, Rational{1});
    const auto t = star_finishing_times_generic<Rational>(
        std::span<const Rational>(alpha), std::span<const Rational>(z),
        std::span<const Rational>(w));
    for (std::size_t i = 1; i < t.size(); ++i) EXPECT_EQ(t[i], t[0]) << i;
}

TEST(ExactExtensions, StarExactMatchesDouble) {
    const std::vector<Rational> z{Rational::parse("1/10"), Rational::parse("2/5")};
    const std::vector<Rational> w{Rational::parse("1"), Rational::parse("2")};
    const auto exact = star_optimal_allocation_generic<Rational>(
        std::span<const Rational>(z), std::span<const Rational>(w));
    StarInstance instance{{0.1, 0.4}, {1.0, 2.0}};
    const auto approx = star_optimal_allocation(instance);
    for (std::size_t i = 0; i < approx.size(); ++i) {
        EXPECT_NEAR(approx[i], exact[i].to_double(), 1e-14);
    }
}

TEST(ExactExtensions, LinearEqualFinishExactBothKinds) {
    const std::vector<Rational> w{Rational::parse("1"), Rational::parse("2"),
                                  Rational::parse("7/5"), Rational::parse("9/10")};
    const Rational z = Rational::parse("1/5");
    for (auto kind : {LinearKind::kLinearFE, LinearKind::kLinearNFE}) {
        const auto alpha = linear_optimal_allocation_generic<Rational>(
            kind, std::span<const Rational>(w), z);
        Rational sum;
        for (const auto& a : alpha) sum += a;
        EXPECT_EQ(sum, Rational{1});
        const auto t = linear_finishing_times_generic<Rational>(
            kind, std::span<const Rational>(alpha), std::span<const Rational>(w), z);
        for (std::size_t i = 1; i < t.size(); ++i) {
            EXPECT_EQ(t[i], t[0]) << to_string(kind) << " i=" << i;
        }
    }
}

TEST(ExactExtensions, LinearExactMatchesDouble) {
    const std::vector<Rational> w{Rational::parse("1"), Rational::parse("2"),
                                  Rational::parse("3/2")};
    const auto exact = linear_optimal_allocation_generic<Rational>(
        LinearKind::kLinearFE, std::span<const Rational>(w), Rational::parse("1/4"));
    const LinearInstance instance{LinearKind::kLinearFE, 0.25, {1.0, 2.0, 1.5}};
    const auto approx = linear_optimal_allocation(instance);
    for (std::size_t i = 0; i < approx.size(); ++i) {
        EXPECT_NEAR(approx[i], exact[i].to_double(), 1e-14);
    }
}

}  // namespace
}  // namespace dlsbl::dlt
