// Churn / fault-injection scenarios (DESIGN.md "Churn model").
//
// Each scenario drives a fixed-seed run through a ChurnPlan and checks two
// things: (1) the protocol-level response — bid-deadline exclusion, the
// processing watchdog, NCP-NFE reallocation of a dead processor's remaining
// blocks, pro-rata settlement, or termination when the load origin dies —
// and (2) byte-identity between the sim adapter and the BusDriver for the
// full artifact set (outcome, ledger, JSONL, trace, catapult, metrics).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "agents/zoo.hpp"
#include "obs/catapult.hpp"
#include "obs/event.hpp"
#include "protocol/detail/run_internals.hpp"
#include "protocol/runner.hpp"

namespace dlsbl::protocol {
namespace {

ProtocolConfig base_config(dlt::NetworkKind kind = dlt::NetworkKind::kNcpFE) {
    ProtocolConfig config;
    config.kind = kind;
    config.z = 0.25;
    config.true_w = {1.0, 2.0, 1.5, 0.8};
    config.block_count = 240;
    config.seed = 42;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    config.strategies.assign(config.true_w.size(), agents::truthful());
    return config;
}

// Outcome rendering including the churn fields, so a sim/bus divergence in
// any ruling shows up as a byte difference here, not just in the trace.
std::string render_outcome(const ProtocolOutcome& outcome) {
    std::ostringstream out;
    out.precision(17);
    out << "terminated=" << outcome.terminated_early
        << " reason=" << outcome.termination_reason
        << " ended_in=" << to_string(outcome.ended_in)
        << " fine=" << outcome.fine_amount << " makespan=" << outcome.makespan
        << " user_paid=" << outcome.user_paid
        << " msgs=" << outcome.control_messages
        << " bytes=" << outcome.control_bytes
        << " dead=" << outcome.churn_dead
        << " realloc=" << outcome.churn_realloc_blocks << "\n";
    out << "excluded=";
    for (const auto& name : outcome.churn_excluded) out << name << ",";
    out << "\n";
    for (const auto& p : outcome.processors) {
        out << p.name << " bid=" << p.bid << " alpha=" << p.alpha
            << " assigned=" << p.blocks_assigned
            << " received=" << p.blocks_received << " extra=" << p.blocks_extra
            << " excluded=" << p.excluded << " phi=" << p.phi
            << " commenced=" << p.commenced_work << " payment=" << p.payment
            << " fines=" << p.fines << " rewards=" << p.rewards
            << " fined=" << p.fined << " cost=" << p.work_cost << "\n";
    }
    return out.str();
}

std::string render_ledger(const Ledger& ledger) {
    std::ostringstream out;
    out.precision(17);
    for (const auto& entry : ledger.history()) {
        out << entry.from << " -> " << entry.to << " " << entry.amount << " ("
            << entry.memo << ")\n";
    }
    return out.str();
}

struct RunCapture {
    ProtocolOutcome result;
    std::string outcome;
    std::string ledger;
    std::string jsonl;
    std::string trace;
    std::string catapult;
    std::string run_metrics;
};

RunCapture capture(const ProtocolConfig& config, DriverKind kind) {
    auto& log = obs::EventLog::instance();
    log.reset();
    std::ostringstream jsonl;
    log.add_sink(std::make_shared<obs::JsonlSink>(jsonl));
    log.set_level(util::LogLevel::Debug);

    RunCapture capture;
    capture.result =
        run_protocol(RunRequest{config, kind}, [&](const RunInternals& internals) {
            capture.ledger = render_ledger(internals.context.ledger());
            capture.trace = internals.trace().render();
            capture.catapult = obs::catapult_from_trace(internals.trace());
            capture.run_metrics = internals.context.metrics_registry().prometheus_text();
        });
    log.flush();
    log.reset();
    capture.outcome = render_outcome(capture.result);
    capture.jsonl = jsonl.str();
    return capture;
}

// Runs the config under both drivers, asserts artifact byte-identity, and
// returns the sim capture for scenario-level assertions.
RunCapture expect_equivalent(const ProtocolConfig& config, const std::string& label) {
    RunCapture sim = capture(config, DriverKind::kSim);
    const RunCapture bus = capture(config, DriverKind::kBus);
    EXPECT_FALSE(sim.outcome.empty()) << label;
    EXPECT_FALSE(sim.trace.empty()) << label;
    EXPECT_FALSE(sim.jsonl.empty()) << label;
    EXPECT_EQ(sim.outcome, bus.outcome) << label;
    EXPECT_EQ(sim.ledger, bus.ledger) << label;
    EXPECT_EQ(sim.jsonl, bus.jsonl) << label;
    EXPECT_EQ(sim.trace, bus.trace) << label;
    EXPECT_EQ(sim.catapult, bus.catapult) << label;
    EXPECT_EQ(sim.run_metrics, bus.run_metrics) << label;
    return sim;
}

// ---- crash before bidding: bid-deadline exclusion ---------------------------

TEST(ChurnScenarios, CrashBeforeBidExcludesAndRunSettles) {
    auto config = base_config();
    config.churn_plan.events = {{"P3", 0.0, ChurnEventKind::kCrash}};
    const auto run = expect_equivalent(config, "crash-before-bid");
    const auto& outcome = run.result;

    ASSERT_EQ(outcome.churn_excluded, std::vector<std::string>{"P3"});
    EXPECT_TRUE(outcome.processor("P3").excluded);
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_EQ(outcome.ended_in, Phase::kDone);
    // Exclusion is not an offense: no fines anywhere, and the excluded
    // processor simply earns nothing.
    EXPECT_EQ(outcome.fined_count(), 0u);
    EXPECT_EQ(outcome.processor("P3").payment, 0.0);
    EXPECT_EQ(outcome.processor("P3").blocks_assigned, 0u);
    // The survivors split the whole load and all get paid.
    std::size_t assigned = 0;
    for (const auto& p : outcome.processors) assigned += p.blocks_assigned;
    EXPECT_EQ(assigned, config.block_count);
    for (const auto& p : outcome.processors) {
        if (p.name == "P3") continue;
        EXPECT_GT(p.payment, 0.0) << p.name;
    }
    EXPECT_GT(outcome.user_paid, 0.0);
    EXPECT_NE(run.run_metrics.find("dlsbl_churn_exclusions_total"), std::string::npos);
}

// ---- crash mid-transfer: the load never arrives; watchdog reallocates -------

TEST(ChurnScenarios, CrashMidTransferTriggersWatchdogReallocation) {
    auto config = base_config();
    // P2 bids at t=0 (healthy), then dies before the LO's shipment reaches
    // it. The referee's processing watchdog notices the unstarted assignee
    // and reallocates every one of its blocks.
    config.churn_plan.events = {{"P2", 0.02, ChurnEventKind::kCrash}};
    config.churn_plan.policy.processing_grace = 0.8;
    const auto run = expect_equivalent(config, "crash-mid-transfer");
    const auto& outcome = run.result;

    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_TRUE(outcome.churn_excluded.empty());
    EXPECT_EQ(outcome.churn_dead, "P2");
    const auto& dead = outcome.processor("P2");
    EXPECT_FALSE(dead.commenced_work);
    EXPECT_EQ(outcome.churn_realloc_blocks, dead.blocks_assigned);
    EXPECT_GT(outcome.churn_realloc_blocks, 0u);
    // Everything granted away was really executed by a survivor.
    std::size_t extras = 0;
    for (const auto& p : outcome.processors) extras += p.blocks_extra;
    EXPECT_EQ(extras, outcome.churn_realloc_blocks);
    // The dead processor proved no work, so it is paid nothing — but it is
    // not fined either (death is not an offense).
    EXPECT_EQ(dead.payment, 0.0);
    EXPECT_EQ(outcome.fined_count(), 0u);
    EXPECT_NE(run.run_metrics.find("dlsbl_churn_reallocations_total"), std::string::npos);
}

// ---- crash mid-compute: meter lost; remaining blocks reallocated ------------

TEST(ChurnScenarios, CrashMidComputeReallocatesRemainingBlocks) {
    auto config = base_config();
    config.churn_plan.events = {{"P4", 0.35, ChurnEventKind::kCrash}};
    const auto run = expect_equivalent(config, "crash-mid-compute");
    const auto& outcome = run.result;

    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_EQ(outcome.churn_dead, "P4");
    const auto& dead = outcome.processor("P4");
    // It had commenced, so only the *remaining* blocks move.
    EXPECT_TRUE(dead.commenced_work);
    EXPECT_GT(outcome.churn_realloc_blocks, 0u);
    EXPECT_LT(outcome.churn_realloc_blocks, dead.blocks_assigned);
    std::size_t extras = 0;
    for (const auto& p : outcome.processors) extras += p.blocks_extra;
    EXPECT_EQ(extras, outcome.churn_realloc_blocks);
    // Pro-rata settlement: the dead processor keeps pay for the meter-proved
    // prefix, strictly less than its full-assignment pay would have been.
    EXPECT_GT(dead.payment, 0.0);
    const auto honest = capture(base_config(), DriverKind::kSim).result;
    EXPECT_LT(dead.payment, honest.processor("P4").payment);
    EXPECT_EQ(outcome.fined_count(), 0u);
}

// ---- crash after compute: payment never submitted; deadline settlement ------

TEST(ChurnScenarios, SilentAfterComputeStillSettlesAtDeadline) {
    auto config = base_config();
    // P3 computes its full share, then a loss window swallows the meter
    // broadcast and its retransmit. The referee settles canonically at the
    // payment deadline; full work means full pay, and silence is no offense.
    config.churn_plan.losses = {{"P3", 0.4, 5.0}};
    const auto run = expect_equivalent(config, "silent-after-compute");
    const auto& outcome = run.result;

    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_TRUE(outcome.churn_excluded.empty());
    EXPECT_TRUE(outcome.churn_dead.empty());
    EXPECT_TRUE(outcome.processor("P3").commenced_work);
    EXPECT_GT(outcome.processor("P3").payment, 0.0);
    EXPECT_EQ(outcome.fined_count(), 0u);
    EXPECT_GT(outcome.user_paid, 0.0);
    // Identical bids and block division -> identical settled payments to the
    // static run, just reached via the deadline path.
    const auto honest = capture(base_config(), DriverKind::kSim).result;
    for (const auto& p : outcome.processors) {
        EXPECT_DOUBLE_EQ(p.payment, honest.processor(p.name).payment) << p.name;
    }
}

// ---- stale rejoin: replayed signed bid is benign ----------------------------

TEST(ChurnScenarios, StaleRejoinReplayIsBenign) {
    auto config = base_config();
    config.churn_plan.events = {{"P3", 0.0, ChurnEventKind::kCrash},
                                {"P3", 0.9, ChurnEventKind::kRestartStale}};
    const auto run = expect_equivalent(config, "stale-rejoin");
    const auto& outcome = run.result;

    // The rejoin replays the *identical* signed bid bytes: peers dedup it,
    // the referee's first-bid-wins recorder ignores it, and crucially nobody
    // mistakes the replay for offense (i) double-bidding.
    EXPECT_FALSE(outcome.terminated_early);
    ASSERT_EQ(outcome.churn_excluded, std::vector<std::string>{"P3"});
    EXPECT_EQ(outcome.fined_count(), 0u);
    EXPECT_EQ(outcome.processor("P3").payment, 0.0);
    EXPECT_GT(outcome.user_paid, 0.0);
}

// ---- load origin dies: no reallocation possible; clean termination ----------

TEST(ChurnScenarios, LoadOriginCrashTerminatesWithoutFines) {
    auto config = base_config();  // NCP-FE: P1 is the load origin
    config.churn_plan.events = {{"P1", 0.01, ChurnEventKind::kCrash}};
    config.churn_plan.policy.processing_grace = 0.8;
    const auto run = expect_equivalent(config, "lo-crash");
    const auto& outcome = run.result;

    EXPECT_TRUE(outcome.terminated_early);
    EXPECT_NE(outcome.termination_reason.find("churn"), std::string::npos)
        << outcome.termination_reason;
    // Death is not an offense: termination carries no fines and no payouts.
    EXPECT_EQ(outcome.fined_count(), 0u);
    EXPECT_EQ(outcome.user_paid, 0.0);
    EXPECT_NE(run.run_metrics.find("dlsbl_churn_terminations_total"), std::string::npos);
}

// ---- delay window: late delivery, same economics ----------------------------

TEST(ChurnScenarios, DelayWindowOnlyShiftsTimingNotMoney) {
    auto config = base_config();
    config.churn_plan.delays = {{"P2", 0.0, 0.1, 0.03}};
    const auto run = expect_equivalent(config, "delay-window");
    const auto& outcome = run.result;

    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_TRUE(outcome.churn_excluded.empty());
    EXPECT_TRUE(outcome.churn_dead.empty());
    EXPECT_EQ(outcome.fined_count(), 0u);
    const auto honest = capture(base_config(), DriverKind::kSim).result;
    for (const auto& p : outcome.processors) {
        EXPECT_DOUBLE_EQ(p.payment, honest.processor(p.name).payment) << p.name;
        EXPECT_EQ(p.blocks_assigned, honest.processor(p.name).blocks_assigned) << p.name;
    }
    EXPECT_NE(run.run_metrics.find("dlsbl_churn_messages_total"), std::string::npos);
}

// ---- churn + deviant: offenses still caught under failures ------------------

TEST(ChurnScenarios, PaymentCheaterStillFinedUnderChurn) {
    auto config = base_config();
    config.churn_plan.events = {{"P3", 0.0, ChurnEventKind::kCrash}};
    config.strategies[1] = agents::payment_cheater();
    const auto run = expect_equivalent(config, "churn+payment-cheater");
    const auto& outcome = run.result;

    EXPECT_TRUE(outcome.processor("P2").fined);
    EXPECT_EQ(outcome.fined_count(), 1u);
    EXPECT_FALSE(outcome.terminated_early);
}

// ---- NCP-NFE flavor: exclusion works when the LO is last --------------------

TEST(ChurnScenarios, NfeCrashBeforeBidExcludes) {
    auto config = base_config(dlt::NetworkKind::kNcpNFE);
    config.churn_plan.events = {{"P2", 0.0, ChurnEventKind::kCrash}};
    const auto run = expect_equivalent(config, "nfe-crash-before-bid");
    const auto& outcome = run.result;

    ASSERT_EQ(outcome.churn_excluded, std::vector<std::string>{"P2"});
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_EQ(outcome.fined_count(), 0u);
    EXPECT_GT(outcome.user_paid, 0.0);
}

}  // namespace
}  // namespace dlsbl::protocol
