// dlsbl_analyze test suite.
//
// Four layers, mirroring the tool's structure:
//   1. subset-parser unit tests on deliberately tricky C++ (nested
//      namespaces, out-of-line methods, ctor init lists, templates,
//      lambdas, operators, macros) — the parser's documented blind spots
//      are pinned here too;
//   2. per-pass tests against the good/bad fixture pairs in
//      tests/analyze_fixtures/ — every bad fixture must fail its pass,
//      every good twin must pass;
//   3. facts-file mechanics and artifact round-trips (JSON and SARIF both
//      re-parse through obs::json_parse);
//   4. repository meta-tests: the real src/ tree builds a program with no
//      errors and analyzes clean under the checked-in facts file — with
//      the determinism-taint pass specifically reporting zero unsuppressed
//      flows in src/protocol/.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/parser.hpp"
#include "analyze/passes.hpp"
#include "analyze/program.hpp"
#include "analyze/report.hpp"
#include "obs/json.hpp"

namespace {

using dlsbl::analyze::AnalyzeConfig;
using dlsbl::analyze::Facts;
using dlsbl::analyze::FileModel;
using dlsbl::analyze::Finding;
using dlsbl::analyze::Program;
using dlsbl::analyze::build_program_from_sources;
using dlsbl::analyze::build_program_tree;
using dlsbl::analyze::default_config;
using dlsbl::analyze::parse_facts;
using dlsbl::analyze::parse_file;

std::string read_fixture(const std::string& name) {
    const std::filesystem::path path =
        std::filesystem::path(DLSBL_SOURCE_DIR) / "tests" / "analyze_fixtures" /
        name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing fixture " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// Injects fixtures into the program under virtual repo paths, so fixture
// files on disk can play protocol/util/obs roles.
Program fixture_program(
    const std::vector<std::pair<std::string, std::string>>& path_to_fixture) {
    std::vector<std::pair<std::string, std::string>> sources;
    for (const auto& [virtual_path, fixture] : path_to_fixture) {
        sources.emplace_back(virtual_path, read_fixture(fixture));
    }
    return build_program_from_sources(sources);
}

std::string dump(const std::vector<Finding>& findings) {
    std::string out;
    for (const Finding& f : findings) {
        out += "  " + f.pass + " " + f.file + ":" + std::to_string(f.line) +
               " " + f.symbol + ": " + f.message + "\n";
    }
    return out;
}

const dlsbl::analyze::FunctionDef* find_fn(const FileModel& model,
                                           const std::string& name) {
    for (const auto& fn : model.functions) {
        if (fn.name == name) return &fn;
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// 1. Subset parser
// ---------------------------------------------------------------------------

TEST(AnalyzeParser, NestedNamespacesAndMethods) {
    const FileModel m = parse_file("src/x.cpp", R"cpp(
namespace outer::inner {
struct Widget {
    int size() const { return 1; }
};
}  // namespace outer::inner
namespace outer {
int helper() { return 2; }
}
int freestanding() { return 3; }
)cpp");
    ASSERT_EQ(m.functions.size(), 3u);
    EXPECT_EQ(m.functions[0].qualified, "outer::inner::Widget::size");
    EXPECT_EQ(m.functions[0].class_name, "Widget");
    EXPECT_EQ(m.functions[0].ns, "outer::inner");
    EXPECT_EQ(m.functions[1].qualified, "outer::helper");
    EXPECT_EQ(m.functions[2].qualified, "freestanding");
}

TEST(AnalyzeParser, OutOfLineCtorWithInitListAttributesCallsToBody) {
    const FileModel m = parse_file("src/x.cpp", R"cpp(
namespace app {
struct Meter {
    explicit Meter(int v);
    void reset(int v);
    int v_;
};
Meter::Meter(int v) : v_(v) { reset(v); }
}  // namespace app
)cpp");
    const auto* ctor = find_fn(m, "Meter");
    ASSERT_NE(ctor, nullptr);
    EXPECT_EQ(ctor->qualified, "app::Meter::Meter");
    // v_(v) in the init list is not a call; reset(v) in the body is.
    ASSERT_EQ(ctor->calls.size(), 1u);
    EXPECT_EQ(ctor->calls[0].name, "reset");
}

TEST(AnalyzeParser, TemplatesAndLambdasFoldIntoEnclosingFunction) {
    const FileModel m = parse_file("src/x.cpp", R"cpp(
template <typename T>
T twice(T v) {
    auto dbl = [](T x) { return x + x; };
    return dbl(v);
}
)cpp");
    ASSERT_EQ(m.functions.size(), 1u);
    EXPECT_EQ(m.functions[0].name, "twice");
    ASSERT_EQ(m.functions[0].calls.size(), 1u);
    EXPECT_EQ(m.functions[0].calls[0].name, "dbl");
}

TEST(AnalyzeParser, PreprocessorLinesAreInvisible) {
    const FileModel m = parse_file("src/x.cpp", R"cpp(
#define LOG_CALL(x) log_sink(x)
#include "util/strings.hpp"
#include <vector>
int plain() { return 0; }
)cpp");
    ASSERT_EQ(m.functions.size(), 1u);
    EXPECT_EQ(m.functions[0].name, "plain");
    EXPECT_TRUE(m.functions[0].calls.empty());
    // Quoted include recorded; the macro body and <vector> are not.
    ASSERT_EQ(m.includes.size(), 1u);
    EXPECT_EQ(m.includes[0].path, "util/strings.hpp");
}

TEST(AnalyzeParser, EnumExtraction) {
    const FileModel m = parse_file("src/x.hpp", R"cpp(
namespace n {
enum class Kind : unsigned char { kA = 1, kB = 2, kC = 3 };
enum Legacy { kOld, kNew };
}  // namespace n
)cpp");
    ASSERT_EQ(m.enums.size(), 2u);
    EXPECT_EQ(m.enums[0].qualified, "n::Kind");
    EXPECT_EQ(m.enums[0].enumerators,
              (std::vector<std::string>{"kA", "kB", "kC"}));
    EXPECT_EQ(m.enums[1].enumerators,
              (std::vector<std::string>{"kOld", "kNew"}));
}

TEST(AnalyzeParser, LockSitesTrackHeldStackAndScopedGroups) {
    const FileModel m = parse_file("src/x.cpp", R"cpp(
#include <mutex>
struct S {
    std::mutex mu_;
    std::mutex aux_;
    void f(S& other) {
        std::lock_guard<std::mutex> a(mu_);
        {
            std::lock_guard<std::mutex> b(other.aux_);
        }
        std::lock_guard<std::mutex> c(aux_);
    }
    void g() { std::scoped_lock both(mu_, aux_); }
};
)cpp");
    ASSERT_EQ(m.mutexes.size(), 2u);
    EXPECT_EQ(m.mutexes[0].class_name, "S");
    const auto* f = find_fn(m, "f");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(f->locks.size(), 3u);
    EXPECT_TRUE(f->locks[0].held_before.empty());
    EXPECT_EQ(f->locks[1].object, "other");
    EXPECT_EQ(f->locks[1].held_before, (std::vector<std::size_t>{0}));
    // The inner block released lock b before c was acquired.
    EXPECT_EQ(f->locks[2].held_before, (std::vector<std::size_t>{0}));
    const auto* g = find_fn(m, "g");
    ASSERT_NE(g, nullptr);
    ASSERT_EQ(g->locks.size(), 2u);
    EXPECT_EQ(g->locks[0].group, g->locks[1].group);
    EXPECT_NE(g->locks[0].group, dlsbl::analyze::LockSite::kNoGroup);
}

TEST(AnalyzeParser, IterationSitesAndContainerTable) {
    const FileModel m = parse_file("src/x.cpp", R"cpp(
#include <unordered_map>
#include <vector>
struct M {
    std::unordered_map<int, int> cache_;
    std::vector<int> order_;
    int walk() {
        int s = 0;
        for (auto& kv : cache_) s += kv.second;
        auto it = order_.begin();
        return s;
    }
};
)cpp");
    ASSERT_EQ(m.containers.size(), 1u);
    EXPECT_EQ(m.containers[0].name, "cache_");
    EXPECT_TRUE(m.containers[0].unordered);
    const auto* walk = find_fn(m, "walk");
    ASSERT_NE(walk, nullptr);
    ASSERT_EQ(walk->iterations.size(), 2u);
    EXPECT_EQ(walk->iterations[0].receiver, "cache_");
    EXPECT_EQ(walk->iterations[1].receiver, "order_");
}

TEST(AnalyzeParser, NondeterminismSources) {
    const FileModel m = parse_file("src/x.cpp", R"cpp(
#include <chrono>
#include <cstdlib>
long stamp() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
int knob() { return std::getenv("X") != nullptr ? 1 : 0; }
struct H {
    std::size_t hash_ptr(const void* p) const {
        return std::hash<const void*>{}(p);
    }
};
)cpp");
    const auto* stamp = find_fn(m, "stamp");
    ASSERT_NE(stamp, nullptr);
    ASSERT_EQ(stamp->sources.size(), 1u);
    EXPECT_EQ(stamp->sources[0].what, "::now");
    const auto* knob = find_fn(m, "knob");
    ASSERT_NE(knob, nullptr);
    ASSERT_EQ(knob->sources.size(), 1u);
    EXPECT_EQ(knob->sources[0].what, "getenv");
    const auto* hash_ptr = find_fn(m, "hash_ptr");
    ASSERT_NE(hash_ptr, nullptr);
    ASSERT_EQ(hash_ptr->sources.size(), 1u);
    EXPECT_EQ(hash_ptr->sources[0].what, "pointer-hash");
}

TEST(AnalyzeParser, QualifiedRefsIncludeSuffixes) {
    const FileModel m = parse_file("src/x.cpp", R"cpp(
int f() { return static_cast<int>(proto::MsgType::kBid); }
)cpp");
    EXPECT_EQ(m.qualified_refs.count("proto::MsgType::kBid"), 1u);
    EXPECT_EQ(m.qualified_refs.count("MsgType::kBid"), 1u);
}

// ---------------------------------------------------------------------------
// 2. Passes vs fixture pairs
// ---------------------------------------------------------------------------

TEST(AnalyzeTaint, BadFixtureLeaksThroughTwoHops) {
    const Program p =
        fixture_program({{"src/protocol/fake_pricing.cpp", "bad_taint.cpp"}});
    const AnalyzeConfig config = default_config();
    const std::vector<Finding> findings =
        dlsbl::analyze::pass_taint(p, config.taint);
    // All three functions on the chain live in protected code.
    ASSERT_EQ(findings.size(), 3u) << dump(findings);
    EXPECT_EQ(findings[0].symbol, "dlsbl::protocol::read_tuning_knob");
    // Sorted by line: seed (11), intermediate (16), sink (19).
    const Finding& sink = findings[2];
    EXPECT_EQ(sink.symbol, "dlsbl::protocol::quote_payment");
    EXPECT_NE(sink.message.find("getenv"), std::string::npos);
    ASSERT_EQ(sink.notes.size(), 1u);
    EXPECT_NE(sink.notes[0].find("quote_payment"), std::string::npos);
    EXPECT_NE(sink.notes[0].find("scaled_rate"), std::string::npos);
    EXPECT_NE(sink.notes[0].find("read_tuning_knob"), std::string::npos);
}

TEST(AnalyzeTaint, GoodFixtureIsCleanUnderSanitizeFact) {
    const Program p =
        fixture_program({{"src/protocol/fake_pricing.cpp", "good_taint.cpp"}});
    AnalyzeConfig config = default_config();
    const Facts facts = parse_facts(
        "sanitize dlsbl::protocol::read_thread_knob thread knobs change "
        "speed, never bytes\n");
    ASSERT_TRUE(facts.errors.empty());
    config.taint.sanitized = facts.sanitize_globs();
    const std::vector<Finding> findings =
        dlsbl::analyze::pass_taint(p, config.taint);
    EXPECT_TRUE(findings.empty()) << dump(findings);
    // Without the fact the same program is dirty — the fact is load-bearing.
    config.taint.sanitized.clear();
    EXPECT_FALSE(dlsbl::analyze::pass_taint(p, config.taint).empty());
}

TEST(AnalyzeLockOrder, BadFixtureHasCycleAndDoubleAcquisition) {
    const Program p =
        fixture_program({{"src/exec/fake_locks.cpp", "bad_lockorder.cpp"}});
    const std::vector<Finding> findings = dlsbl::analyze::pass_lock_order(p);
    ASSERT_EQ(findings.size(), 2u) << dump(findings);
    bool saw_cycle = false;
    bool saw_double = false;
    for (const Finding& f : findings) {
        if (f.message.find("lock-order cycle") != std::string::npos) {
            saw_cycle = true;
            EXPECT_NE(f.message.find("mu_"), std::string::npos);
        }
        if (f.message.find("second acquisition") != std::string::npos) {
            saw_double = true;
            EXPECT_EQ(f.symbol, "Ledger::table_mu_");
        }
    }
    EXPECT_TRUE(saw_cycle) << dump(findings);
    EXPECT_TRUE(saw_double) << dump(findings);
}

TEST(AnalyzeLockOrder, GoodFixtureIsClean) {
    const Program p =
        fixture_program({{"src/exec/fake_locks.cpp", "good_lockorder.cpp"}});
    const std::vector<Finding> findings = dlsbl::analyze::pass_lock_order(p);
    EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(AnalyzeLockOrder, HeldLocksCrossCallBoundaries) {
    // f holds A::mu_ while calling g, which takes B::mu_; h takes B::mu_
    // then A::mu_ directly. The cycle only exists via the derived edge.
    const Program p = build_program_from_sources({{"src/x.cpp", R"cpp(
#include <mutex>
struct A { std::mutex a_mu_; };
struct B { std::mutex b_mu_; };
void g(B& b) { std::lock_guard<std::mutex> l(b.b_mu_); }
void f(A& a, B& b) {
    std::lock_guard<std::mutex> l(a.a_mu_);
    g(b);
}
void h(A& a, B& b) {
    std::lock_guard<std::mutex> l(b.b_mu_);
    std::lock_guard<std::mutex> m(a.a_mu_);
}
)cpp"}});
    const std::vector<Finding> findings = dlsbl::analyze::pass_lock_order(p);
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_NE(findings[0].message.find("lock-order cycle"), std::string::npos);
    EXPECT_NE(findings[0].notes.at(0).find("f -> g"), std::string::npos);
}

TEST(AnalyzeDispatch, BadFixtureMissesOneEnumerator) {
    const Program p =
        fixture_program({{"src/protocol/fake_site.cpp", "bad_dispatch.cpp"}});
    dlsbl::analyze::DispatchCheck check;
    check.enum_name = "FakeMsg";
    check.enum_file = "src/protocol/fake_site.cpp";
    check.sites = {{"fake", "src/protocol/fake_site.cpp"}};
    check.registration_calls = {"on", "ignore"};
    const std::vector<Finding> findings =
        dlsbl::analyze::pass_dispatch(p, {check});
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_EQ(findings[0].symbol, "FakeMsg::kQuit");
}

TEST(AnalyzeDispatch, GoodFixtureRegistersEverything) {
    const Program p =
        fixture_program({{"src/protocol/fake_site.cpp", "good_dispatch.cpp"}});
    dlsbl::analyze::DispatchCheck check;
    check.enum_name = "FakeMsg";
    check.enum_file = "src/protocol/fake_site.cpp";
    check.sites = {{"fake", "src/protocol/fake_site.cpp"}};
    check.registration_calls = {"on", "ignore"};
    EXPECT_TRUE(dlsbl::analyze::pass_dispatch(p, {check}).empty());
}

TEST(AnalyzeDispatch, MentionModeFlagsUnreferencedEnumerator) {
    const Program p = build_program_from_sources(
        {{"src/protocol/kinds.hpp",
          "enum class EvKind { kUp = 1, kDown = 2, kStale = 3 };\n"},
         {"src/protocol/ruling.cpp",
          "int rule(int k) {\n"
          "    if (k == static_cast<int>(EvKind::kUp)) return 1;\n"
          "    if (k == static_cast<int>(EvKind::kDown)) return 2;\n"
          "    return 0;\n"
          "}\n"}});
    dlsbl::analyze::DispatchCheck check;
    check.enum_name = "EvKind";
    check.enum_file = "src/protocol/kinds.hpp";
    check.mention_files = {"src/protocol/ruling.cpp"};
    const std::vector<Finding> findings =
        dlsbl::analyze::pass_dispatch(p, {check});
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_EQ(findings[0].symbol, "EvKind::kStale");
}

TEST(AnalyzeLayering, BadFixtureViolatesDagAndCycles) {
    const Program p = fixture_program(
        {{"src/util/wallclock.cpp", "bad_layering.cpp"},
         {"src/protocol/fake_wire.hpp", "fake_wire.hpp"},
         {"src/obs/fake_ring_a.hpp", "fake_ring_a.hpp"},
         {"src/obs/fake_ring_b.hpp", "fake_ring_b.hpp"}});
    const std::vector<Finding> findings =
        dlsbl::analyze::pass_layering(p, default_config().layering);
    ASSERT_EQ(findings.size(), 2u) << dump(findings);
    EXPECT_EQ(findings[0].pass, dlsbl::analyze::kPassIncludeCycle);
    EXPECT_NE(findings[0].message.find("fake_ring_a.hpp"), std::string::npos);
    EXPECT_EQ(findings[1].pass, dlsbl::analyze::kPassLayering);
    EXPECT_EQ(findings[1].symbol, "util -> protocol");
}

TEST(AnalyzeLayering, GoodFixtureSelfIncludeIsAllowed) {
    const Program p =
        fixture_program({{"src/protocol/uses_wire.cpp", "good_layering.cpp"},
                         {"src/protocol/fake_wire.hpp", "fake_wire.hpp"}});
    EXPECT_TRUE(
        dlsbl::analyze::pass_layering(p, default_config().layering).empty());
}

TEST(AnalyzeLayering, DriversExceptionReachesSimButUtilMayNot) {
    const Program p = build_program_from_sources(
        {{"src/sim/kernel_fake.hpp", "inline int k() { return 0; }\n"},
         {"src/protocol/drivers/fake_driver.cpp",
          "#include \"sim/kernel_fake.hpp\"\nint d() { return k(); }\n"},
         {"src/protocol/core_fake.cpp",
          "#include \"sim/kernel_fake.hpp\"\nint c() { return k(); }\n"}});
    const std::vector<Finding> findings =
        dlsbl::analyze::pass_layering(p, default_config().layering);
    // Only the non-drivers protocol file may not touch sim.
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_EQ(findings[0].file, "src/protocol/core_fake.cpp");
    EXPECT_EQ(findings[0].symbol, "protocol -> sim");
}

// ---------------------------------------------------------------------------
// 3. Facts mechanics and artifact round-trips
// ---------------------------------------------------------------------------

TEST(AnalyzeFacts, ParseAcceptsKnownKindsAndRejectsTheRest) {
    const Facts ok = parse_facts(
        "# comment\n"
        "\n"
        "sanitize dlsbl::util::* seeded streams\n"
        "lock-order src/exec/* justified by pool teardown order\n");
    EXPECT_TRUE(ok.errors.empty());
    ASSERT_EQ(ok.entries.size(), 2u);
    EXPECT_EQ(ok.entries[0].kind, "sanitize");
    EXPECT_EQ(ok.entries[1].justification, "justified by pool teardown order");

    EXPECT_EQ(parse_facts("frobnicate src/* because\n").errors.size(), 1u);
    EXPECT_EQ(parse_facts("sanitize\n").errors.size(), 1u);
    EXPECT_EQ(parse_facts("lock-order src/exec/*\n").errors.size(), 1u);
}

TEST(AnalyzeFacts, SuppressionMatchesFileOrSymbolAndCountsHits) {
    const Facts facts = parse_facts(
        "lock-order src/exec/pool.cpp shutdown path holds both by design\n"
        "taint-determinism *::jitter_ns seeded jitter\n");
    ASSERT_TRUE(facts.errors.empty());
    Finding by_file;
    by_file.pass = "lock-order";
    by_file.file = "src/exec/pool.cpp";
    Finding by_symbol;
    by_symbol.pass = "taint-determinism";
    by_symbol.file = "src/sim/kernel.cpp";
    by_symbol.symbol = "dlsbl::sim::jitter_ns";
    Finding unrelated;
    unrelated.pass = "lock-order";
    unrelated.file = "src/obs/metrics.cpp";

    const dlsbl::analyze::Filtered filtered = dlsbl::analyze::apply_facts(
        facts, {by_file, by_symbol, unrelated});
    EXPECT_EQ(filtered.suppressed, 2u);
    ASSERT_EQ(filtered.kept.size(), 1u);
    EXPECT_EQ(filtered.kept[0].file, "src/obs/metrics.cpp");
    EXPECT_EQ(facts.entries[0].hits, 1u);
    EXPECT_EQ(facts.entries[1].hits, 1u);
}

TEST(AnalyzeReport, JsonArtifactRoundTrips) {
    Finding f;
    f.pass = dlsbl::analyze::kPassTaint;
    f.file = "src/protocol/node.cpp";
    f.line = 42;
    f.symbol = "dlsbl::protocol::quote";
    f.message = "nondeterminism reaches protocol code";
    f.notes = {"call chain: a b"};
    const std::string doc = dlsbl::analyze::report_json({f}, 3, 120);
    const auto parsed = dlsbl::obs::json_parse(doc);
    ASSERT_TRUE(parsed.has_value());
    const auto* manifest = parsed->find("manifest");
    ASSERT_NE(manifest, nullptr);
    const auto* generator = manifest->find("generator");
    ASSERT_NE(generator, nullptr);
    EXPECT_EQ(generator->string, "dlsbl_analyze");
    const auto* findings = parsed->find("findings");
    ASSERT_NE(findings, nullptr);
    ASSERT_EQ(findings->array.size(), 1u);
    EXPECT_EQ(findings->array[0].find("pass")->string,
              dlsbl::analyze::kPassTaint);
    EXPECT_EQ(findings->array[0].find("line")->number, 42.0);
    const auto* summary = parsed->find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("suppressed")->number, 3.0);
    EXPECT_EQ(summary->find("files")->number, 120.0);
}

TEST(AnalyzeReport, SarifRoundTripsWithRulesAndLocations) {
    Finding located;
    located.pass = dlsbl::analyze::kPassLockOrder;
    located.file = "src/obs/metrics.cpp";
    located.line = 96;
    located.message = "second acquisition";
    Finding program_level;
    program_level.pass = dlsbl::analyze::kPassDispatch;
    program_level.message = "site missing";
    const std::string doc =
        dlsbl::analyze::report_sarif({located, program_level});
    const auto parsed = dlsbl::obs::json_parse(doc);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("version")->string, "2.1.0");
    const auto* runs = parsed->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), 1u);
    const auto& run = runs->array[0];
    const auto* driver = run.find("tool")->find("driver");
    ASSERT_NE(driver, nullptr);
    EXPECT_EQ(driver->find("name")->string, "dlsbl_analyze");
    // One SARIF rule per pass id.
    EXPECT_EQ(driver->find("rules")->array.size(),
              dlsbl::analyze::all_pass_ids().size());
    const auto* results = run.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->array.size(), 2u);
    const auto& first = results->array[0];
    EXPECT_EQ(first.find("ruleId")->string, dlsbl::analyze::kPassLockOrder);
    const auto* locations = first.find("locations");
    ASSERT_NE(locations, nullptr);
    EXPECT_EQ(locations->array[0]
                  .find("physicalLocation")
                  ->find("artifactLocation")
                  ->find("uri")
                  ->string,
              "src/obs/metrics.cpp");
    EXPECT_EQ(locations->array[0]
                  .find("physicalLocation")
                  ->find("region")
                  ->find("startLine")
                  ->number,
              96.0);
    // Program-level findings carry no location.
    EXPECT_EQ(results->array[1].find("locations"), nullptr);
}

TEST(AnalyzeProgram, CompileDbFiltersToRootsAndNormalizes) {
    const std::filesystem::path db_path =
        std::filesystem::path(::testing::TempDir()) / "dlsbl_compile_db.json";
    {
        std::ofstream out(db_path, std::ios::binary);
        out << "[{\"directory\":" << dlsbl::obs::json_escape(DLSBL_SOURCE_DIR)
            << ",\"command\":\"c++ -c src/obs/json.cpp\","
            << "\"file\":\"src/obs/json.cpp\"},"
            << "{\"directory\":\"/usr\",\"command\":\"c++ -c x.cpp\","
            << "\"file\":\"/usr/x.cpp\"}]";
    }
    std::vector<std::string> files;
    std::string error;
    ASSERT_TRUE(dlsbl::analyze::compile_db_files(
        DLSBL_SOURCE_DIR, db_path.string(), {"src"}, &files, &error))
        << error;
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(files[0], "src/obs/json.cpp");

    // A db that is not a JSON array is a configuration error.
    const std::filesystem::path bad_path =
        std::filesystem::path(::testing::TempDir()) / "dlsbl_bad_db.json";
    {
        std::ofstream out(bad_path, std::ios::binary);
        out << "{\"not\":\"an array\"}";
    }
    files.clear();
    EXPECT_FALSE(dlsbl::analyze::compile_db_files(
        DLSBL_SOURCE_DIR, bad_path.string(), {"src"}, &files, &error));
}

TEST(AnalyzeProgram, TreeBuildClosesOverQuotedIncludes) {
    std::vector<dlsbl::analyze::BuildError> errors;
    const Program p = build_program_tree(
        DLSBL_SOURCE_DIR, {"src/protocol/churn.cpp"}, &errors);
    EXPECT_TRUE(errors.empty());
    // The TU itself plus its quoted-include closure.
    EXPECT_EQ(p.files.count("src/protocol/churn.cpp"), 1u);
    EXPECT_EQ(p.files.count("src/protocol/churn.hpp"), 1u);
}

// ---------------------------------------------------------------------------
// 4. Repository meta-tests
// ---------------------------------------------------------------------------

Facts repo_facts() {
    std::ifstream in(std::filesystem::path(DLSBL_SOURCE_DIR) / "tools" /
                         "analyze" / "dlsbl_analyze.facts",
                     std::ios::binary);
    EXPECT_TRUE(in);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_facts(buffer.str());
}

TEST(AnalyzeRepository, TreeAnalyzesCleanUnderCheckedInFacts) {
    std::vector<dlsbl::analyze::BuildError> errors;
    const Program p = build_program_tree(DLSBL_SOURCE_DIR, {"src"}, &errors);
    ASSERT_TRUE(errors.empty());
    EXPECT_GT(p.files.size(), 40u);  // whole-program, not a sample

    const Facts facts = repo_facts();
    ASSERT_TRUE(facts.errors.empty());
    AnalyzeConfig config = default_config();
    config.taint.sanitized = facts.sanitize_globs();
    const dlsbl::analyze::Filtered filtered = dlsbl::analyze::apply_facts(
        facts, dlsbl::analyze::run_passes(p, config));
    EXPECT_TRUE(filtered.kept.empty()) << dump(filtered.kept);
}

TEST(AnalyzeRepository, ProtocolHasZeroUnsuppressedTaintFlows) {
    std::vector<dlsbl::analyze::BuildError> errors;
    const Program p = build_program_tree(DLSBL_SOURCE_DIR, {"src"}, &errors);
    ASSERT_TRUE(errors.empty());
    const Facts facts = repo_facts();
    AnalyzeConfig config = default_config();
    config.taint.sanitized = facts.sanitize_globs();
    std::vector<Finding> in_protocol;
    for (Finding& f :
         dlsbl::analyze::pass_taint(p, config.taint)) {
        if (f.file.rfind("src/protocol/", 0) == 0 &&
            !facts.suppresses(f)) {
            in_protocol.push_back(std::move(f));
        }
    }
    EXPECT_TRUE(in_protocol.empty()) << dump(in_protocol);
}

TEST(AnalyzeRepository, DispatchSitesAreExhaustiveWithoutSuppression) {
    std::vector<dlsbl::analyze::BuildError> errors;
    const Program p = build_program_tree(DLSBL_SOURCE_DIR, {"src"}, &errors);
    ASSERT_TRUE(errors.empty());
    // No facts applied: both MessageDispatcher sites and the churn ruling
    // must be exhaustive on their own.
    const std::vector<Finding> findings =
        dlsbl::analyze::pass_dispatch(p, default_config().dispatch);
    EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(AnalyzeRepository, LockOrderCleanAfterScopedLockFix) {
    std::vector<dlsbl::analyze::BuildError> errors;
    const Program p = build_program_tree(DLSBL_SOURCE_DIR, {"src"}, &errors);
    ASSERT_TRUE(errors.empty());
    // Regression pin for the real finding this pass surfaced: the
    // sequential lock_guard pairs in Histogram::merge_from and
    // MetricsRegistry::merge_from (src/obs/metrics.cpp) were same-class
    // double acquisitions; both now go through std::scoped_lock.
    const std::vector<Finding> findings = dlsbl::analyze::pass_lock_order(p);
    EXPECT_TRUE(findings.empty()) << dump(findings);
}

}  // namespace
