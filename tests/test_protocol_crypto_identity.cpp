// End-to-end byte-identity gate for the crypto fast paths: a fixed-seed
// protocol run must produce identical traces, public keys, payments, and
// outcomes whether SHA-256 runs on the scalar backend with inline keygen or
// on the dispatch-selected SIMD backend with parallel MSS keygen and the
// verification cache engaged.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "agents/zoo.hpp"
#include "crypto/pki.hpp"
#include "crypto/sha256.hpp"
#include "protocol/churn.hpp"
#include "protocol/detail/run_internals.hpp"
#include "protocol/runner.hpp"
#include "util/bytes.hpp"

namespace dlsbl {
namespace {

struct RunArtifacts {
    std::string trace;
    std::string public_keys;  // hex, one line per identity
    std::string money;        // payments/fines/utilities rendered to text
    bool operator==(const RunArtifacts&) const = default;
};

RunArtifacts capture_run(const protocol::ProtocolConfig& config,
                         protocol::DriverKind driver = protocol::DriverKind::kSim) {
    RunArtifacts artifacts;
    std::ostringstream keys;
    const auto outcome = protocol::run_protocol(
        protocol::RunRequest{config, driver},
        [&](const protocol::RunInternals& internals) {
            artifacts.trace = internals.trace().render();
            const auto& pki = internals.context.pki();
            for (const auto& name : internals.context.processor_names()) {
                const auto& pk = pki.public_key_of(name);
                keys << name << ' '
                     << util::to_hex(std::span<const std::uint8_t>(pk.data(), pk.size()))
                     << '\n';
            }
            const auto& user_pk = pki.public_key_of(internals.context.user_name());
            keys << "user "
                 << util::to_hex(
                        std::span<const std::uint8_t>(user_pk.data(), user_pk.size()))
                 << '\n';
        });
    artifacts.public_keys = keys.str();
    std::ostringstream money;
    money << outcome.fine_amount << ' ' << outcome.makespan << ' ' << outcome.user_paid
          << ' ' << outcome.control_messages << ' ' << outcome.control_bytes << '\n';
    for (const auto& p : outcome.processors) {
        money << p.name << ' ' << p.bid << ' ' << p.alpha << ' ' << p.payment << ' '
              << p.fines << ' ' << p.rewards << ' ' << p.utility() << '\n';
    }
    artifacts.money = money.str();
    return artifacts;
}

class ScopedBackend {
 public:
    explicit ScopedBackend(std::string_view name) : saved_(crypto::sha256_backend()) {
        EXPECT_TRUE(crypto::sha256_set_backend(name));
    }
    ~ScopedBackend() { crypto::sha256_set_backend(saved_); }

 private:
    std::string saved_;
};

protocol::ProtocolConfig identity_config(crypto::SignatureAlgorithm algorithm) {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpNFE;
    config.z = 0.3;
    config.true_w = {1.0, 2.0, 1.5, 1.2};
    config.block_count = 600;
    config.seed = 42;
    config.signature_algorithm = algorithm;
    config.mss_height = 3;
    return config;
}

TEST(ProtocolCryptoIdentity, ScalarInlineEqualsSimdParallel) {
    for (const auto algorithm : {crypto::SignatureAlgorithm::kMerkle,
                                 crypto::SignatureAlgorithm::kMerkleWots}) {
        auto config = identity_config(algorithm);

        RunArtifacts baseline;
        {
            ScopedBackend scalar("scalar");
            config.crypto_keygen_jobs = 1;
            baseline = capture_run(config);
        }
        ASSERT_FALSE(baseline.trace.empty());
        ASSERT_FALSE(baseline.public_keys.empty());

        RunArtifacts fast;
        {
            ScopedBackend best("auto");
            config.crypto_keygen_jobs = 8;
            fast = capture_run(config);
        }

        EXPECT_EQ(baseline, fast) << "algorithm=" << static_cast<int>(algorithm)
                                  << " backend=" << crypto::sha256_backend();
    }
}

// Deferred batch signature verification must be OBSERVABLY IDENTICAL to
// eager per-arrival verification: same verdicts at the same sim times, same
// fines, same artifacts — at any batch size and on either driver. The
// scenarios pick the paths where a wrong flush point would show: honest
// accumulation, a payment-phase verdict, a mid-bidding double-bid dispute,
// and churn (exclusions, reallocation, canonical settlement).
TEST(ProtocolCryptoIdentity, DeferredBatchVerificationMatchesEager) {
    struct Scenario {
        const char* name;
        std::function<void(protocol::ProtocolConfig&)> tweak;
    };
    const std::vector<Scenario> scenarios = {
        {"honest", [](protocol::ProtocolConfig&) {}},
        {"payment-cheater",
         [](protocol::ProtocolConfig& c) { c.strategies[1] = agents::payment_cheater(); }},
        {"double-bidder",
         [](protocol::ProtocolConfig& c) { c.strategies[2] = agents::inconsistent_bidder(); }},
        {"churn-crash",
         [](protocol::ProtocolConfig& c) {
             c.churn_plan.events = {{"P3", 0.0, protocol::ChurnEventKind::kCrash}};
         }},
    };
    for (const auto& scenario : scenarios) {
        auto config = identity_config(crypto::SignatureAlgorithm::kMerkleWots);
        config.strategies.assign(config.true_w.size(), agents::truthful());
        scenario.tweak(config);

        config.verify_batch = 1;  // eager baseline
        const RunArtifacts eager = capture_run(config);
        ASSERT_FALSE(eager.trace.empty()) << scenario.name;

        for (const std::size_t batch : {std::size_t{16}, std::size_t{64}}) {
            config.verify_batch = batch;
            EXPECT_EQ(eager, capture_run(config))
                << scenario.name << " diverges at verify_batch=" << batch;
        }

        // Same equivalence on the bus driver (different delivery machinery,
        // same arrival order for a fixed seed).
        config.verify_batch = 16;
        EXPECT_EQ(eager, capture_run(config, protocol::DriverKind::kBus))
            << scenario.name << " diverges on the bus driver";
    }
}

// Repeating the identical run must also be stable against itself (guards
// against nondeterminism introduced by the verify cache or thread pool).
TEST(ProtocolCryptoIdentity, RepeatRunsAreStable) {
    auto config = identity_config(crypto::SignatureAlgorithm::kMerkleWots);
    config.crypto_keygen_jobs = 4;
    const auto a = capture_run(config);
    const auto b = capture_run(config);
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dlsbl
