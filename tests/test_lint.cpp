// dlsbl_lint test suite: lexer behaviour, each rule against in-memory and
// on-disk fixtures (tests/lint_fixtures/), suppression markers, allowlist
// parsing/matching, JSON output — plus the meta-test that the real tree
// lints clean with the checked-in allowlist.
#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/lexer.hpp"
#include "lint.hpp"
#include "obs/json.hpp"
#include "rules.hpp"

namespace lint = dlsbl::lint;

namespace {

// Lints `source` as if it lived at repo-relative `path`, with no allowlist.
lint::LintResult lint_at(const std::string& path, std::string_view source) {
    lint::LintResult result;
    lint::lint_source(path, source, lint::Allowlist{}, &result);
    return result;
}

std::vector<std::string> rules_of(const lint::LintResult& result) {
    std::vector<std::string> rules;
    rules.reserve(result.findings.size());
    for (const auto& f : result.findings) rules.push_back(f.rule);
    return rules;
}

std::size_t count_rule(const lint::LintResult& result, std::string_view rule) {
    const std::vector<std::string> rules = rules_of(result);
    return static_cast<std::size_t>(std::count(rules.begin(), rules.end(), rule));
}

std::string read_fixture(const std::string& name) {
    const std::string path =
        std::string(DLSBL_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// ------------------------------------------------------------------ lexer

TEST(LintLexer, StripsCommentsAndStrings) {
    const auto lexed = lint::lex(
        "int x = 1; // rand() time(nullptr)\n"
        "const char* s = \"rand(\"; /* ::now() */\n");
    for (const auto& token : lexed.tokens) {
        if (token.kind == lint::TokenKind::kIdentifier) {
            EXPECT_NE(token.text, "rand");
            EXPECT_NE(token.text, "now");
        }
    }
    // The string literal is one token whose text excludes the quotes.
    const auto it = std::find_if(
        lexed.tokens.begin(), lexed.tokens.end(), [](const lint::Token& t) {
            return t.kind == lint::TokenKind::kString;
        });
    ASSERT_NE(it, lexed.tokens.end());
    EXPECT_EQ(it->text, "rand(");
}

TEST(LintLexer, RawStringsAndCharLiterals) {
    const auto lexed = lint::lex(
        "auto s = R\"x(rand() == 1.5)x\";\n"
        "char c = ')';\n"
        "int after = 7;\n");
    ASSERT_GE(lexed.tokens.size(), 3u);
    const auto str = std::find_if(
        lexed.tokens.begin(), lexed.tokens.end(), [](const lint::Token& t) {
            return t.kind == lint::TokenKind::kString;
        });
    ASSERT_NE(str, lexed.tokens.end());
    EXPECT_EQ(str->text, "rand() == 1.5");
    // Lexing resumes correctly after the raw string and char literal.
    const auto after = std::find_if(
        lexed.tokens.begin(), lexed.tokens.end(), [](const lint::Token& t) {
            return t.text == "after";
        });
    EXPECT_NE(after, lexed.tokens.end());
}

TEST(LintLexer, TracksLineAndColumn) {
    const auto lexed = lint::lex("int a;\n  double b;\n");
    ASSERT_GE(lexed.tokens.size(), 5u);
    EXPECT_EQ(lexed.tokens[0].line, 1u);
    EXPECT_EQ(lexed.tokens[0].col, 1u);
    const auto b = std::find_if(
        lexed.tokens.begin(), lexed.tokens.end(),
        [](const lint::Token& t) { return t.text == "double"; });
    ASSERT_NE(b, lexed.tokens.end());
    EXPECT_EQ(b->line, 2u);
    EXPECT_EQ(b->col, 3u);
}

TEST(LintLexer, FloatLiteralClassification) {
    EXPECT_TRUE(lint::is_float_literal("1.5"));
    EXPECT_TRUE(lint::is_float_literal("0.0"));
    EXPECT_TRUE(lint::is_float_literal(".5"));
    EXPECT_TRUE(lint::is_float_literal("1e9"));
    EXPECT_TRUE(lint::is_float_literal("2.5e-3"));
    EXPECT_TRUE(lint::is_float_literal("1.0f"));
    EXPECT_TRUE(lint::is_float_literal("0x1.8p3"));
    EXPECT_FALSE(lint::is_float_literal("1"));
    EXPECT_FALSE(lint::is_float_literal("42u"));
    EXPECT_FALSE(lint::is_float_literal("0x1E"));  // hex int, not exponent
    EXPECT_FALSE(lint::is_float_literal("0b101"));
    EXPECT_FALSE(lint::is_float_literal("1'000'000"));
}

TEST(LintLexer, CollectsAllowMarkers) {
    const auto lexed = lint::lex(
        "int a = f();  // DLSBL_LINT_ALLOW(determinism)\n"
        "// DLSBL_LINT_ALLOW(float-equality, manual-lock)\n"
        "int b = g();\n");
    ASSERT_EQ(lexed.allow.count(1), 1u);
    EXPECT_EQ(lexed.allow.at(1).count("determinism"), 1u);
    // The standalone marker covers its own line and the next one.
    ASSERT_EQ(lexed.allow.count(3), 1u);
    EXPECT_EQ(lexed.allow.at(3).count("float-equality"), 1u);
    EXPECT_EQ(lexed.allow.at(3).count("manual-lock"), 1u);
}

// ------------------------------------------------------------- rules (bad)

TEST(LintRules, DeterminismFixture) {
    const auto result =
        lint_at("src/protocol/fixture.cpp", read_fixture("bad_determinism.cpp"));
    EXPECT_EQ(count_rule(result, lint::kRuleDeterminism), 7u)
        << "random_device, rand, srand, getenv, ::now, std::time, clock";
    EXPECT_EQ(result.stats.findings, 7u);
}

TEST(LintRules, FloatEqualityFixture) {
    const auto result =
        lint_at("src/dlt/fixture.cpp", read_fixture("bad_float_eq.cpp"));
    EXPECT_EQ(count_rule(result, lint::kRuleFloatEquality), 4u);
}

TEST(LintRules, ManualLockFixture) {
    const auto result =
        lint_at("src/protocol/fixture.cpp", read_fixture("bad_locking.cpp"));
    EXPECT_EQ(count_rule(result, lint::kRuleManualLock), 4u)
        << "lock, unlock, try_lock, unlock";
    // The namespace-scope std::mutex is also a mutable global under src/.
    EXPECT_EQ(count_rule(result, lint::kRuleMutableGlobal), 1u);
}

TEST(LintRules, CryptoAllocFixture) {
    const std::string source = read_fixture("bad_crypto_alloc.cpp");
    const auto in_crypto = lint_at("src/crypto/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_crypto, lint::kRuleCryptoAlloc), 4u)
        << "new, malloc, free, delete — but not `= delete`";
    // The same file outside src/crypto raises no alloc findings.
    const auto outside = lint_at("src/util/fixture.cpp", source);
    EXPECT_EQ(count_rule(outside, lint::kRuleCryptoAlloc), 0u);
}

TEST(LintRules, ProtocolCodecFixture) {
    const std::string source = read_fixture("bad_protocol_codec.cpp");
    const auto in_core = lint_at("src/protocol/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_core, lint::kRuleProtocolCodec), 3u)
        << "body.serialize, msg->serialize, BidBody::deserialize";
    // Drivers adapt the core to real transports and may re-frame bytes.
    const auto in_drivers = lint_at("src/protocol/drivers/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_drivers, lint::kRuleProtocolCodec), 0u);
    // Outside src/protocol the rule does not apply (crypto has its own
    // envelope codec; tests/bench exercise both codecs on purpose).
    const auto outside = lint_at("src/crypto/fixture.cpp", source);
    EXPECT_EQ(count_rule(outside, lint::kRuleProtocolCodec), 0u);
}

TEST(LintRules, ProtocolCoreAllocFixture) {
    // The zero-allocation contract now covers the protocol core too.
    const std::string source = read_fixture("bad_crypto_alloc.cpp");
    const auto in_core = lint_at("src/protocol/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_core, lint::kRuleCryptoAlloc), 4u)
        << "new, malloc, free, delete — but not `= delete`";
    // Drivers and detail stay exempt: they bridge to allocating I/O stacks.
    const auto in_drivers = lint_at("src/protocol/drivers/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_drivers, lint::kRuleCryptoAlloc), 0u);
}

TEST(LintRules, HeaderHygieneFixture) {
    const auto result =
        lint_at("src/util/fixture.hpp", read_fixture("bad_header.hpp"));
    EXPECT_EQ(count_rule(result, lint::kRulePragmaOnce), 1u);
    EXPECT_EQ(count_rule(result, lint::kRuleUsingNamespace), 2u)
        << "global scope and nested-namespace scope";
}

TEST(LintRules, MutableGlobalFixture) {
    const auto result =
        lint_at("src/obs/fixture.cpp", read_fixture("bad_global.cpp"));
    EXPECT_EQ(count_rule(result, lint::kRuleMutableGlobal), 6u);
    // Outside src/ the rule does not apply (bench/test drivers keep state).
    const auto outside = lint_at("bench/fixture.cpp", read_fixture("bad_global.cpp"));
    EXPECT_EQ(count_rule(outside, lint::kRuleMutableGlobal), 0u);
}

TEST(LintRules, LayeringFixture) {
    const std::string source = read_fixture("layering_bad.cpp");
    const auto in_core = lint_at("src/protocol/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_core, lint::kRuleLayering), 4u)
        << "two sim/ includes plus sim::Simulator and sim::Network";
    // Drivers and the detail layer are the adaptation points — exempt.
    const auto in_drivers = lint_at("src/protocol/drivers/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_drivers, lint::kRuleLayering), 0u);
    const auto in_detail = lint_at("src/protocol/detail/fixture.hpp", source);
    EXPECT_EQ(count_rule(in_detail, lint::kRuleLayering), 0u);
    // Outside src/protocol/ the rule does not apply at all.
    const auto outside = lint_at("src/obs/fixture.cpp", source);
    EXPECT_EQ(count_rule(outside, lint::kRuleLayering), 0u);
}

TEST(LintRules, UnorderedIterationFixture) {
    const std::string source = read_fixture("bad_unordered_iter.cpp");
    const auto in_protocol = lint_at("src/protocol/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_protocol, lint::kRuleUnorderedIter), 4u)
        << "range-for x2, .begin(), ->cbegin() — but not the .end()/.cend() "
           "sentinels";
    // Drivers and detail construct artifacts too: the whole protocol layer
    // is in scope, unlike the codec/alloc rules.
    const auto in_drivers = lint_at("src/protocol/drivers/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_drivers, lint::kRuleUnorderedIter), 4u);
    const auto in_crypto = lint_at("src/crypto/fixture.cpp", source);
    EXPECT_EQ(count_rule(in_crypto, lint::kRuleUnorderedIter), 4u);
    // Outside the artifact-path layers the rule does not apply.
    const auto outside = lint_at("src/obs/fixture.cpp", source);
    EXPECT_EQ(count_rule(outside, lint::kRuleUnorderedIter), 0u);
}

TEST(LintRules, UnorderedIterationNearMissesPass) {
    const auto result = lint_at("src/protocol/fixture.cpp",
                                read_fixture("good_unordered_iter.cpp"));
    for (const auto& f : result.findings) {
        ADD_FAILURE() << f.rule << " at line " << f.line << ": " << f.excerpt;
    }
}

TEST(LintRules, LayeringNearMissesPass) {
    const auto result =
        lint_at("src/protocol/fixture.cpp", read_fixture("layering_good.cpp"));
    for (const auto& f : result.findings) {
        ADD_FAILURE() << f.rule << " at line " << f.line << ": " << f.excerpt;
    }
}

// ------------------------------------------------------------ rules (good)

TEST(LintRules, GoodFileIsClean) {
    const auto result =
        lint_at("src/protocol/fixture.cpp", read_fixture("good_file.cpp"));
    EXPECT_TRUE(result.findings.empty()) << rules_of(result).size();
    for (const auto& f : result.findings) {
        ADD_FAILURE() << f.rule << " at line " << f.line << ": " << f.excerpt;
    }
}

TEST(LintRules, GoodHeaderIsClean) {
    const auto result =
        lint_at("src/util/fixture.hpp", read_fixture("good_header.hpp"));
    for (const auto& f : result.findings) {
        ADD_FAILURE() << f.rule << " at line " << f.line << ": " << f.excerpt;
    }
}

TEST(LintRules, CppFilesSkipHeaderOnlyRules) {
    // `using namespace` and missing #pragma once are header rules only.
    const auto result =
        lint_at("src/util/fixture.cpp", "using namespace std;\nint f();\n");
    EXPECT_EQ(count_rule(result, lint::kRuleUsingNamespace), 0u);
    EXPECT_EQ(count_rule(result, lint::kRulePragmaOnce), 0u);
}

// ------------------------------------------------------------ suppression

TEST(LintSuppression, InlineMarkersSilenceFindings) {
    const auto result =
        lint_at("src/util/fixture.cpp", read_fixture("suppressed.cpp"));
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.stats.suppressed, 4u)
        << "getenv x3 plus the float-equality on the multi-rule line";
}

TEST(LintSuppression, MarkerForWrongRuleDoesNotSilence) {
    const auto result = lint_at(
        "src/util/fixture.cpp",
        "int f() { return rand(); }  // DLSBL_LINT_ALLOW(float-equality)\n");
    EXPECT_EQ(count_rule(result, lint::kRuleDeterminism), 1u);
    EXPECT_EQ(result.stats.suppressed, 0u);
}

TEST(LintSuppression, WildcardMarkerSilencesEverything) {
    const auto result = lint_at(
        "src/util/fixture.cpp",
        "int f() { return rand(); }  // DLSBL_LINT_ALLOW(*)\n");
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.stats.suppressed, 1u);
}

// -------------------------------------------------------------- allowlist

TEST(LintAllowlist, ParsesEntriesAndRejectsMalformed) {
    const auto list = lint::parse_allowlist(
        "# comment\n"
        "\n"
        "determinism src/obs/* wall clocks are the obs layer's job\n"
        "* tests/lint_fixtures/* deliberately broken\n"
        "bogus-rule src/* nope\n"
        "determinism src/only_two_fields\n");
    ASSERT_EQ(list.entries.size(), 2u);
    EXPECT_EQ(list.entries[0].rule, "determinism");
    EXPECT_EQ(list.entries[0].glob, "src/obs/*");
    EXPECT_EQ(list.entries[1].rule, "*");
    ASSERT_EQ(list.errors.size(), 2u);
    EXPECT_NE(list.errors[0].find("unknown rule id"), std::string::npos);
    EXPECT_NE(list.errors[1].find("expected"), std::string::npos);
}

TEST(LintAllowlist, GlobMatching) {
    EXPECT_TRUE(lint::glob_match("src/obs/*", "src/obs/profiler.hpp"));
    EXPECT_TRUE(lint::glob_match("src/*", "src/crypto/mss.cpp"));
    EXPECT_TRUE(lint::glob_match("*.hpp", "src/util/rng.hpp"));
    EXPECT_TRUE(lint::glob_match("src/???.cpp", "src/abc.cpp"));
    EXPECT_FALSE(lint::glob_match("src/obs/*", "src/util/rng.hpp"));
    EXPECT_FALSE(lint::glob_match("src/???.cpp", "src/abcd.cpp"));
    EXPECT_FALSE(lint::glob_match("bench/*", "src/bench_not.cpp"));
}

TEST(LintAllowlist, EntriesSilenceMatchingFindings) {
    const auto list = lint::parse_allowlist(
        "determinism src/obs/* obs layer measures wall-clock by design\n");
    ASSERT_TRUE(list.errors.empty());
    lint::LintResult obs_result;
    lint::lint_source("src/obs/fixture.cpp", "int f() { return rand(); }\n",
                      list, &obs_result);
    EXPECT_TRUE(obs_result.findings.empty());
    EXPECT_EQ(obs_result.stats.allowlisted, 1u);
    // Same violation outside the glob still fires.
    lint::LintResult util_result;
    lint::lint_source("src/util/fixture.cpp", "int f() { return rand(); }\n",
                      list, &util_result);
    EXPECT_EQ(util_result.stats.findings, 1u);
}

// ------------------------------------------------------------------- JSON

TEST(LintJson, ReportRoundTrips) {
    const auto result =
        lint_at("src/dlt/fixture.cpp", read_fixture("bad_float_eq.cpp"));
    const std::string doc = lint::report_json(result);
    const auto parsed = dlsbl::obs::json_parse(doc);
    ASSERT_TRUE(parsed.has_value()) << doc;
    const auto* manifest = parsed->find("manifest");
    ASSERT_NE(manifest, nullptr);
    ASSERT_NE(manifest->find("generator"), nullptr);
    EXPECT_EQ(manifest->find("generator")->string, "dlsbl_lint");
    EXPECT_NE(manifest->find("git"), nullptr);
    const auto* findings = parsed->find("findings");
    ASSERT_NE(findings, nullptr);
    EXPECT_EQ(findings->array.size(), result.findings.size());
    ASSERT_FALSE(findings->array.empty());
    const auto& first = findings->array.front();
    EXPECT_EQ(first.find("rule")->string, lint::kRuleFloatEquality);
    EXPECT_EQ(first.find("file")->string, "src/dlt/fixture.cpp");
    const auto* summary = parsed->find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("findings")->number,
              static_cast<double>(result.stats.findings));
}

// -------------------------------------------------------------- meta-test

// The real tree must lint clean with the checked-in allowlist — the same
// invocation `ctest -L lint` runs, executed in-process.
TEST(LintTree, RepositoryLintsClean) {
    const std::string root = DLSBL_SOURCE_DIR;
    std::ifstream allow_in(root + "/tools/lint/dlsbl_lint.allow",
                           std::ios::binary);
    ASSERT_TRUE(allow_in.good());
    std::ostringstream buffer;
    buffer << allow_in.rdbuf();
    const auto allowlist = lint::parse_allowlist(buffer.str());
    EXPECT_TRUE(allowlist.errors.empty())
        << "allowlist has malformed entries; first: "
        << (allowlist.errors.empty() ? "" : allowlist.errors.front());
    const auto result = lint::lint_tree(
        root, {"src", "tests", "bench", "examples", "tools"}, allowlist);
    for (const auto& f : result.findings) {
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                      << f.message << "\n    | " << f.excerpt;
    }
    EXPECT_GT(result.stats.files, 150u) << "tree walk found too few files";
}

}  // namespace
