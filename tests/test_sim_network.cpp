#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace dlsbl::sim {
namespace {

class Recorder final : public Process {
 public:
    explicit Recorder(std::string name) : Process(std::move(name)) {}

    void on_start() override { started = true; }
    void on_message(const Envelope& envelope) override { inbox.push_back(envelope); }

    bool started = false;
    std::vector<Envelope> inbox;
};

struct Fixture {
    Simulator sim;
    Network net{sim, 0.5};  // z = 0.5
    Recorder a{"A"}, b{"B"}, c{"C"};

    Fixture() {
        net.attach(a);
        net.attach(b);
        net.attach(c);
    }
};

TEST(Network, StartInvokesAllProcesses) {
    Fixture f;
    f.net.start();
    f.sim.run();
    EXPECT_TRUE(f.a.started);
    EXPECT_TRUE(f.b.started);
    EXPECT_TRUE(f.c.started);
}

TEST(Network, UnicastDeliversToRecipientOnly) {
    Fixture f;
    f.net.send("A", "B", 7, util::to_bytes("hello"));
    f.sim.run();
    ASSERT_EQ(f.b.inbox.size(), 1u);
    EXPECT_EQ(f.b.inbox[0].from, "A");
    EXPECT_EQ(f.b.inbox[0].type, 7u);
    EXPECT_EQ(f.b.inbox[0].payload, util::to_bytes("hello"));
    EXPECT_TRUE(f.a.inbox.empty());
    EXPECT_TRUE(f.c.inbox.empty());
}

TEST(Network, BroadcastReachesAllButSender) {
    Fixture f;
    f.net.broadcast("A", 9, util::to_bytes("bid"));
    f.sim.run();
    EXPECT_TRUE(f.a.inbox.empty());
    ASSERT_EQ(f.b.inbox.size(), 1u);
    ASSERT_EQ(f.c.inbox.size(), 1u);
    EXPECT_EQ(f.b.inbox[0].payload, f.c.inbox[0].payload);  // atomic: same bytes
}

TEST(Network, BroadcastCountedOnce) {
    Fixture f;
    f.net.broadcast("A", 9, util::to_bytes("xyz"));
    f.sim.run();
    EXPECT_EQ(f.net.metrics().control_messages(), 1u);
    EXPECT_EQ(f.net.metrics().control_bytes(), 3u);
}

TEST(Network, UnknownRecipientThrows) {
    Fixture f;
    EXPECT_THROW(f.net.send("A", "nobody", 1, {}), std::logic_error);
    EXPECT_THROW(f.net.transfer_load("A", "nobody", 1.0, 1, {}), std::logic_error);
}

TEST(Network, DuplicateAttachThrows) {
    Fixture f;
    Recorder dup{"A"};
    EXPECT_THROW(f.net.attach(dup), std::invalid_argument);
}

TEST(Network, LoadTransferTakesUnitsTimesZ) {
    Fixture f;
    f.net.transfer_load("A", "B", 0.4, 2, util::to_bytes("blocks"));
    f.sim.run();
    ASSERT_EQ(f.b.inbox.size(), 1u);
    EXPECT_DOUBLE_EQ(f.sim.now(), 0.4 * 0.5);
}

TEST(Network, OnePortSerializesTransfers) {
    // Two transfers queued at t=0 must occupy the bus back to back.
    Fixture f;
    std::vector<double> arrivals;
    f.net.transfer_load("A", "B", 0.4, 2, {});
    f.net.transfer_load("A", "C", 0.6, 2, {});
    EXPECT_DOUBLE_EQ(f.net.bus_free_at(), (0.4 + 0.6) * 0.5);
    f.sim.run();
    EXPECT_DOUBLE_EQ(f.sim.now(), 0.5);
}

TEST(Network, LoadTransfersExcludedFromControlMetrics) {
    Fixture f;
    f.net.transfer_load("A", "B", 0.4, 2, util::to_bytes("payload"));
    f.sim.run();
    EXPECT_EQ(f.net.metrics().control_messages(), 0u);
    EXPECT_EQ(f.net.metrics().load_transfers(), 1u);
    EXPECT_DOUBLE_EQ(f.net.metrics().load_units_moved(), 0.4);
}

TEST(Network, ControlLatencyDelaysDelivery) {
    Simulator sim;
    Network net(sim, 0.5, 0.25);
    Recorder a{"A"}, b{"B"};
    net.attach(a);
    net.attach(b);
    net.send("A", "B", 1, {});
    sim.run();
    EXPECT_DOUBLE_EQ(sim.now(), 0.25);
}

TEST(Network, PerPhaseAttribution) {
    Fixture f;
    f.net.metrics().set_phase("Bidding");
    f.net.broadcast("A", 1, util::to_bytes("ab"));
    f.net.metrics().set_phase("ComputingPayments");
    f.net.send("A", "B", 2, util::to_bytes("abcd"));
    f.sim.run();
    const auto& phases = f.net.metrics().by_phase();
    EXPECT_EQ(phases.at("Bidding").bytes, 2u);
    EXPECT_EQ(phases.at("ComputingPayments").bytes, 4u);
}

TEST(Network, TraceRecordsSendAndDeliver) {
    Fixture f;
    f.net.send("A", "B", 1, {});
    f.sim.run();
    EXPECT_EQ(f.net.trace().filter(TraceKind::kMessageSent).size(), 1u);
    EXPECT_EQ(f.net.trace().filter(TraceKind::kMessageDelivered).size(), 1u);
    EXPECT_EQ(f.net.trace().filter_actor("B").size(), 1u);
}

TEST(Network, NegativeParametersRejected) {
    Simulator sim;
    EXPECT_THROW(Network(sim, -1.0), std::invalid_argument);
    EXPECT_THROW(Network(sim, 1.0, -0.1), std::invalid_argument);
    Network net(sim, 1.0);
    Recorder a{"A"}, b{"B"};
    net.attach(a);
    net.attach(b);
    EXPECT_THROW(net.transfer_load("A", "B", -0.5, 1, {}), std::invalid_argument);
}

}  // namespace
}  // namespace dlsbl::sim
