// bench_track comparison logic (tools/bench/track.hpp): normalization,
// noise band, baseline round-trip, median-of-N seeding. Everything runs
// in-memory on hand-built artifacts — the ctest bench_regress gate drives
// the CLI on real BENCH_*.json files.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "track.hpp"

namespace dlsbl {
namespace {

tools::BenchArtifact make_artifact(const std::string& id,
                                   std::map<std::string, double> results) {
    tools::BenchArtifact artifact;
    artifact.bench_id = id;
    artifact.path = "BENCH_" + id + ".json";
    artifact.git_describe = "v-test";
    artifact.results = std::move(results);
    return artifact;
}

tools::BaselineStore store_of(std::vector<tools::BenchArtifact> artifacts) {
    tools::BaselineStore store;
    for (auto& artifact : artifacts) {
        store.benches[artifact.bench_id] = std::move(artifact);
    }
    return store;
}

TEST(BenchTrack, BenchIdFromPathStripsAffixes) {
    EXPECT_EQ(tools::bench_id_from_path("build/BENCH_crypto.json"), "crypto");
    EXPECT_EQ(tools::bench_id_from_path("BENCH_allocation.json"), "allocation");
    EXPECT_EQ(tools::bench_id_from_path("/a/b\\c/BENCH_x.json"), "x");
    EXPECT_EQ(tools::bench_id_from_path("other.json"), "other");
    EXPECT_EQ(tools::bench_id_from_path("noext"), "noext");
}

TEST(BenchTrack, IdenticalArtifactsReportZeroRegressions) {
    const auto artifact =
        make_artifact("crypto", {{"sha", 1.0}, {"mss", 4.0}, {"wots", 0.5}});
    const auto store = store_of({artifact});
    const auto report = tools::compare_against_baselines(store, {artifact});
    EXPECT_EQ(report.regressions, 0u);
    EXPECT_EQ(report.improvements, 0u);
    ASSERT_EQ(report.deltas.size(), 3u);
    for (const auto& delta : report.deltas) {
        EXPECT_EQ(delta.status, tools::DeltaStatus::kOk);
        EXPECT_DOUBLE_EQ(delta.ratio, 1.0);
    }
}

TEST(BenchTrack, UniformMachineSpeedChangeIsInvisible) {
    const auto baseline =
        make_artifact("crypto", {{"sha", 1.0}, {"mss", 4.0}, {"wots", 0.5}});
    // A host 3x slower scales every time uniformly: normalization cancels it.
    auto slower = baseline;
    for (auto& [name, value] : slower.results) value *= 3.0;
    const auto report =
        tools::compare_against_baselines(store_of({baseline}), {slower});
    EXPECT_EQ(report.regressions, 0u);
    EXPECT_EQ(report.improvements, 0u);
}

TEST(BenchTrack, InjectedTwoXSlowdownRegresses) {
    // Mirrors the ISSUE acceptance criterion: halving one baseline entry
    // (equivalently, the current run being 2x slower on that benchmark)
    // must trip the gate at the default 0.75 band.
    const auto current = make_artifact(
        "crypto", {{"sha", 1.0}, {"mss", 4.0}, {"wots", 0.5}, {"merkle", 2.0}});
    auto baseline = current;
    baseline.results["mss"] = 2.0;  // current is 2x the baseline
    const auto report =
        tools::compare_against_baselines(store_of({baseline}), {current});
    ASSERT_EQ(report.regressions, 1u);
    bool found = false;
    for (const auto& delta : report.deltas) {
        if (delta.name != "mss") continue;
        found = true;
        EXPECT_EQ(delta.status, tools::DeltaStatus::kRegression);
        EXPECT_GT(delta.ratio, 1.75);  // past the default 0.75 band
    }
    EXPECT_TRUE(found);
}

TEST(BenchTrack, SymmetricSpeedupReportsImprovement) {
    const auto baseline = make_artifact(
        "alloc", {{"solve", 8.0}, {"verify", 1.0}, {"chart", 1.0}, {"rank", 1.0}});
    auto current = baseline;
    current.results["solve"] = 2.0;  // 4x faster
    const auto report =
        tools::compare_against_baselines(store_of({baseline}), {current});
    EXPECT_EQ(report.regressions, 0u);
    EXPECT_GE(report.improvements, 1u);
}

TEST(BenchTrack, SmallJitterStaysInsideTheBand) {
    const auto baseline =
        make_artifact("crypto", {{"sha", 1.0}, {"mss", 4.0}, {"wots", 0.5}});
    auto noisy = baseline;
    noisy.results["sha"] *= 1.3;   // 30% wobble on one entry
    noisy.results["wots"] *= 0.8;  // and -20% on another
    const auto report =
        tools::compare_against_baselines(store_of({baseline}), {noisy});
    EXPECT_EQ(report.regressions, 0u) << report.render_text();
}

TEST(BenchTrack, AddedAndRemovedNamesAreInformational) {
    const auto baseline =
        make_artifact("crypto", {{"sha", 1.0}, {"mss", 4.0}, {"gone", 2.0}});
    const auto current =
        make_artifact("crypto", {{"sha", 1.0}, {"mss", 4.0}, {"fresh", 9.0}});
    const auto report =
        tools::compare_against_baselines(store_of({baseline}), {current});
    EXPECT_EQ(report.regressions, 0u);
    bool saw_added = false;
    bool saw_removed = false;
    for (const auto& delta : report.deltas) {
        if (delta.name == "fresh") {
            saw_added = delta.status == tools::DeltaStatus::kAdded;
        }
        if (delta.name == "gone") {
            saw_removed = delta.status == tools::DeltaStatus::kRemoved;
        }
    }
    EXPECT_TRUE(saw_added);
    EXPECT_TRUE(saw_removed);
}

TEST(BenchTrack, UnknownBenchIsSkippedWithNote) {
    const auto store = store_of({make_artifact("crypto", {{"sha", 1.0}})});
    const auto report = tools::compare_against_baselines(
        store, {make_artifact("novel", {{"x", 1.0}})});
    EXPECT_EQ(report.regressions, 0u);
    EXPECT_TRUE(report.deltas.empty());
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_NE(report.notes[0].find("novel"), std::string::npos);
}

TEST(BenchTrack, BaselineStoreRoundTripsThroughJson) {
    tools::BaselineStore store;
    store.relative_band = 0.6;
    auto artifact = make_artifact("crypto", {{"sha", 0.001}, {"mss", 0.25}});
    artifact.derived["speedup"] = 3.5;
    store.benches["crypto"] = artifact;

    const auto parsed = tools::BaselineStore::from_json(store.to_json());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->relative_band, 0.6);
    ASSERT_EQ(parsed->benches.size(), 1u);
    const auto& got = parsed->benches.at("crypto");
    EXPECT_EQ(got.git_describe, "v-test");
    EXPECT_DOUBLE_EQ(got.results.at("sha"), 0.001);
    EXPECT_DOUBLE_EQ(got.results.at("mss"), 0.25);
    EXPECT_DOUBLE_EQ(got.derived.at("speedup"), 3.5);
    // And the serialized form is valid JSON at all.
    EXPECT_TRUE(obs::json_parse(store.to_json()).has_value());
}

TEST(BenchTrack, MedianMergeCollapsesRepeatedRuns) {
    const auto run1 = make_artifact("crypto", {{"sha", 1.0}, {"mss", 10.0}});
    const auto run2 = make_artifact("crypto", {{"sha", 3.0}, {"mss", 2.0}});
    const auto run3 = make_artifact("crypto", {{"sha", 2.0}});
    const auto other = make_artifact("alloc", {{"solve", 5.0}});
    const auto merged = tools::median_merge({run1, run2, run3, other});
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].bench_id, "crypto");  // first-appearance order
    EXPECT_DOUBLE_EQ(merged[0].results.at("sha"), 2.0);   // median of 1,2,3
    EXPECT_DOUBLE_EQ(merged[0].results.at("mss"), 10.0);  // median of 2,10 = upper
    EXPECT_EQ(merged[0].path, "BENCH_crypto.json");
    EXPECT_EQ(merged[1].bench_id, "alloc");
    EXPECT_DOUBLE_EQ(merged[1].results.at("solve"), 5.0);
}

TEST(BenchTrack, ReportSerializesAndSummarizes) {
    const auto baseline =
        make_artifact("crypto", {{"sha", 1.0}, {"mss", 4.0}, {"wots", 0.5}});
    auto current = baseline;
    current.results["mss"] = 40.0;
    const auto report =
        tools::compare_against_baselines(store_of({baseline}), {current});
    ASSERT_GE(report.regressions, 1u);
    EXPECT_NE(report.render_text().find("REGRESSION"), std::string::npos);
    EXPECT_NE(report.render_text().find("regression(s)"), std::string::npos);

    const auto doc = obs::json_parse(report.to_json());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("regressions")->number,
              static_cast<double>(report.regressions));
    EXPECT_EQ(doc->find("deltas")->array.size(), report.deltas.size());
}

TEST(BenchTrack, TrajectoryLineIsOneJsonObject) {
    const auto artifact = make_artifact("crypto", {{"sha", 2.0}, {"mss", 8.0}});
    const std::string line = tools::trajectory_line(artifact);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    const auto doc = obs::json_parse(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("bench")->string, "crypto");
    EXPECT_EQ(doc->find("git")->string, "v-test");
    EXPECT_DOUBLE_EQ(doc->find("geomean_s")->number, 4.0);  // sqrt(2*8)
    EXPECT_DOUBLE_EQ(doc->find("results")->find("sha")->number, 2.0);
}

}  // namespace
}  // namespace dlsbl
