// Adversarial-input robustness: every wire decoder must survive arbitrary
// bytes (returning nullopt, never crashing or throwing) — a processor can
// feed the referee or its peers anything at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "agents/zoo.hpp"
#include "crypto/lamport.hpp"
#include "crypto/merkle.hpp"
#include "crypto/mss.hpp"
#include "crypto/pki.hpp"
#include "obs/metrics.hpp"
#include "protocol/blocks.hpp"
#include "protocol/churn.hpp"
#include "protocol/detail/run_internals.hpp"
#include "protocol/dispatch.hpp"
#include "protocol/messages.hpp"
#include "protocol/runner.hpp"
#include "util/rng.hpp"

namespace dlsbl {
namespace {

util::Bytes random_bytes(util::Xoshiro256& rng, std::size_t max_len) {
    util::Bytes out(static_cast<std::size_t>(rng.uniform_int(0, max_len)));
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    return out;
}

template <typename T>
void fuzz_decoder(std::uint64_t seed, std::size_t iterations, std::size_t max_len) {
    util::Xoshiro256 rng{seed};
    for (std::size_t i = 0; i < iterations; ++i) {
        const util::Bytes data = random_bytes(rng, max_len);
        // Must not throw; any parse success must at least round-trip without
        // crashing.
        const auto parsed = T::deserialize(data);
        if (parsed.has_value()) {
            (void)parsed->serialize();
        }
    }
}

TEST(FuzzCodecs, BidBody) { fuzz_decoder<protocol::BidBody>(1, 3000, 128); }
TEST(FuzzCodecs, LoadBatch) { fuzz_decoder<protocol::LoadBatch>(2, 2000, 512); }
TEST(FuzzCodecs, DoubleBidEvidence) {
    fuzz_decoder<protocol::DoubleBidEvidence>(3, 2000, 512);
}
TEST(FuzzCodecs, AllocComplaint) {
    fuzz_decoder<protocol::AllocComplaintBody>(4, 2000, 512);
}
TEST(FuzzCodecs, BidVector) { fuzz_decoder<protocol::BidVectorBody>(5, 2000, 512); }
TEST(FuzzCodecs, MediateRequest) {
    fuzz_decoder<protocol::MediateRequestBody>(6, 3000, 256);
}
TEST(FuzzCodecs, MeterVector) { fuzz_decoder<protocol::MeterVectorBody>(7, 3000, 256); }
TEST(FuzzCodecs, PaymentBody) { fuzz_decoder<protocol::PaymentBody>(8, 3000, 256); }
TEST(FuzzCodecs, TerminateBody) { fuzz_decoder<protocol::TerminateBody>(9, 3000, 256); }
TEST(FuzzCodecs, Block) { fuzz_decoder<protocol::Block>(10, 2000, 512); }
TEST(FuzzCodecs, SignedMessage) { fuzz_decoder<crypto::SignedMessage>(11, 3000, 512); }
TEST(FuzzCodecs, MerkleProof) { fuzz_decoder<crypto::MerkleProof>(12, 3000, 512); }
TEST(FuzzCodecs, MssSignature) { fuzz_decoder<crypto::MssSignature>(13, 500, 20000); }
TEST(FuzzCodecs, LamportSignature) {
    fuzz_decoder<crypto::LamportSignature>(14, 200, 20000);
}

// Mutation fuzzing: take a VALID encoding, flip random bytes, and require
// graceful handling — and, for signed content, rejection by verification.
TEST(FuzzCodecs, MutatedSignedMessagesNeverVerify) {
    crypto::Pki pki;
    auto signer =
        crypto::make_registered_signer(pki, "P1", 7, crypto::SignatureAlgorithm::kFast);
    protocol::BidBody bid{1, "P1", 1.5};
    const auto msg = crypto::sign_message(*signer, "P1", bid.serialize());
    const util::Bytes wire = msg.serialize();

    util::Xoshiro256 rng{99};
    int accepted_mutants = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        util::Bytes mutated = wire;
        const std::size_t flips = 1 + rng.uniform_int(0, 3);
        for (std::size_t f = 0; f < flips; ++f) {
            const std::size_t pos =
                static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
            mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
        }
        if (mutated == wire) continue;
        const auto parsed = crypto::SignedMessage::deserialize(mutated);
        if (parsed && parsed->verify(pki) && parsed->payload == msg.payload &&
            parsed->signer == msg.signer) {
            ++accepted_mutants;  // only possible if mutation hit redundant bytes
        }
    }
    EXPECT_EQ(accepted_mutants, 0);
}

TEST(FuzzCodecs, TruncatedValidEncodingsRejected) {
    protocol::MeterVectorBody body;
    body.job_id = 5;
    body.phis = {{"P1", 0.25}, {"P2", 0.5}, {"P3", 0.75}};
    const util::Bytes wire = body.serialize();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        const auto parsed = protocol::MeterVectorBody::deserialize(
            std::span<const std::uint8_t>(wire.data(), cut));
        EXPECT_FALSE(parsed.has_value()) << "cut at " << cut;
    }
}

TEST(FuzzCodecs, TruncatedSignedMessagesRejectedOrUnverifiable) {
    // Every prefix of a valid signed-message encoding must either fail to
    // parse or fail verification — no truncation can yield a different
    // accepted message.
    crypto::Pki pki;
    auto signer =
        crypto::make_registered_signer(pki, "P2", 7, crypto::SignatureAlgorithm::kFast);
    protocol::PaymentBody payment{3, "P2", {2.75, 1.25}};
    const auto msg = crypto::sign_message(*signer, "P2", payment.serialize());
    const util::Bytes wire = msg.serialize();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        const auto parsed = crypto::SignedMessage::deserialize(
            std::span<const std::uint8_t>(wire.data(), cut));
        if (parsed.has_value()) {
            EXPECT_FALSE(parsed->verify(pki) && parsed->payload == msg.payload)
                << "truncation at " << cut << " still verifies the original payload";
        }
    }
}

TEST(FuzzCodecs, FieldSwappedSignedMessagesNeverVerify) {
    // Splicing fields between two independently valid signed messages — the
    // classic signature-transplant attack — must always fail verification:
    // a signature binds (signer, payload) and covers the identity, so no
    // recombination is valid.
    crypto::Pki pki;
    auto signer1 =
        crypto::make_registered_signer(pki, "P1", 7, crypto::SignatureAlgorithm::kFast);
    auto signer2 =
        crypto::make_registered_signer(pki, "P2", 7, crypto::SignatureAlgorithm::kFast);
    protocol::BidBody bid1{1, "P1", 1.5};
    protocol::BidBody bid2{1, "P2", 2.5};
    const auto msg1 = crypto::sign_message(*signer1, "P1", bid1.serialize());
    const auto msg2 = crypto::sign_message(*signer2, "P2", bid2.serialize());
    ASSERT_TRUE(msg1.verify(pki));
    ASSERT_TRUE(msg2.verify(pki));

    // Every proper hybrid of the two messages (at least one field taken from
    // the other message) must be rejected.
    for (int mask = 1; mask < 7; ++mask) {
        crypto::SignedMessage hybrid = msg1;
        if (mask & 1) hybrid.signer = msg2.signer;
        if (mask & 2) hybrid.payload = msg2.payload;
        if (mask & 4) hybrid.signature = msg2.signature;
        // mask == 7 is msg2 itself; everything else is a forgery.
        if (mask == 7) continue;
        EXPECT_FALSE(hybrid.verify(pki)) << "hybrid mask " << mask << " verified";
        // The forgery must also survive a serialize/deserialize round trip
        // without crashing, and stay rejected.
        const auto reparsed = crypto::SignedMessage::deserialize(hybrid.serialize());
        ASSERT_TRUE(reparsed.has_value());
        EXPECT_FALSE(reparsed->verify(pki)) << "reparsed hybrid mask " << mask;
    }
}

TEST(FuzzCodecs, MutatedMerkleSignedMessagesNeverVerify) {
    // Same mutation sweep as the kFast variant but over the hash-based
    // (Merkle/MSS) signature path, whose verifier walks attacker-controlled
    // tree proofs — it must reject without crashing on every mutant.
    crypto::Pki pki;
    auto signer =
        crypto::make_registered_signer(pki, "P3", 4, crypto::SignatureAlgorithm::kMerkle);
    protocol::TerminateBody body{"offense (iii)", {"P2"}};
    const auto msg = crypto::sign_message(*signer, "P3", body.serialize());
    ASSERT_TRUE(msg.verify(pki));
    const util::Bytes wire = msg.serialize();

    util::Xoshiro256 rng{123};
    int accepted_mutants = 0;
    for (int trial = 0; trial < 300; ++trial) {
        util::Bytes mutated = wire;
        const std::size_t flips = 1 + rng.uniform_int(0, 3);
        for (std::size_t f = 0; f < flips; ++f) {
            const std::size_t pos =
                static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
            mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
        }
        if (mutated == wire) continue;
        const auto parsed = crypto::SignedMessage::deserialize(mutated);
        if (parsed && parsed->verify(pki) && parsed->payload == msg.payload &&
            parsed->signer == msg.signer) {
            ++accepted_mutants;
        }
    }
    EXPECT_EQ(accepted_mutants, 0);
}

TEST(FuzzCodecs, StructuredMutationsOfBodiesHandledGracefully) {
    // Structured mutations of a valid MeterVectorBody encoding: byte flips,
    // chunk deletions, chunk duplications and length-prefix-style splices.
    // The decoder may accept or reject, but an accepted mutant must
    // round-trip and never crash downstream serialization.
    protocol::MeterVectorBody body;
    body.job_id = 11;
    body.phis = {{"P1", 0.2}, {"P2", 0.4}, {"P3", 0.6}, {"P4", 0.8}};
    const util::Bytes wire = body.serialize();

    util::Xoshiro256 rng{321};
    for (int trial = 0; trial < 1500; ++trial) {
        util::Bytes mutated = wire;
        switch (rng.uniform_int(0, 3)) {
            case 0: {  // flip
                const std::size_t pos =
                    static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
                mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
                break;
            }
            case 1: {  // delete a chunk
                const std::size_t start =
                    static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
                const std::size_t len = static_cast<std::size_t>(
                    rng.uniform_int(1, mutated.size() - start));
                mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                              mutated.begin() + static_cast<std::ptrdiff_t>(start + len));
                break;
            }
            case 2: {  // duplicate a chunk
                const std::size_t start =
                    static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
                const std::size_t len = static_cast<std::size_t>(
                    rng.uniform_int(1, std::min<std::size_t>(16, mutated.size() - start)));
                util::Bytes chunk(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                                  mutated.begin() +
                                      static_cast<std::ptrdiff_t>(start + len));
                mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                               chunk.begin(), chunk.end());
                break;
            }
            default: {  // splice the tail of a second valid encoding
                protocol::MeterVectorBody other;
                other.job_id = 12;
                other.phis = {{"P9", 0.9}};
                const util::Bytes donor = other.serialize();
                const std::size_t cut = static_cast<std::size_t>(
                    rng.uniform_int(0, std::min(mutated.size(), donor.size()) - 1));
                mutated.resize(cut);
                mutated.insert(mutated.end(), donor.begin() + static_cast<std::ptrdiff_t>(
                                                  std::min(cut, donor.size())),
                               donor.end());
                break;
            }
        }
        const auto parsed = protocol::MeterVectorBody::deserialize(mutated);
        if (parsed.has_value()) {
            (void)parsed->serialize();
        }
    }
}

// ---- churn-plan and churn-message codecs ------------------------------------

TEST(FuzzCodecs, ChurnPlan) { fuzz_decoder<protocol::ChurnPlan>(15, 3000, 512); }
TEST(FuzzCodecs, ExcludeBody) { fuzz_decoder<protocol::ExcludeBody>(16, 3000, 256); }
TEST(FuzzCodecs, ReallocBody) { fuzz_decoder<protocol::ReallocBody>(17, 3000, 256); }

protocol::ChurnPlan rich_plan() {
    protocol::ChurnPlan plan;
    plan.events = {{"P3", 0.1, protocol::ChurnEventKind::kCrash},
                   {"P3", 0.5, protocol::ChurnEventKind::kRestart},
                   {"P2", 0.2, protocol::ChurnEventKind::kCrash},
                   {"P2", 0.9, protocol::ChurnEventKind::kRestartStale}};
    plan.losses = {{"P1", 0.2, 0.4}, {"P4", 0.0, 0.05}};
    plan.delays = {{"P1", 0.0, 0.1, 0.05}};
    plan.policy = {0.4, 0.04, 2.0, 0.2};
    return plan;
}

TEST(FuzzCodecs, ChurnPlanStructuredMutationsHandledGracefully) {
    // Same structured-mutation sweep as the wire bodies: flips, chunk
    // deletions, duplications and cross-encoding splices of a valid plan
    // encoding. The decoder may accept or reject; an accepted mutant must
    // re-serialize canonically (encode(decode(x)) is a fixed point).
    const util::Bytes wire = rich_plan().serialize();
    protocol::ChurnPlan donor_plan;
    donor_plan.events = {{"P9", 3.0, protocol::ChurnEventKind::kCrash}};
    const util::Bytes donor = donor_plan.serialize();

    util::Xoshiro256 rng{654};
    for (int trial = 0; trial < 2000; ++trial) {
        util::Bytes mutated = wire;
        switch (rng.uniform_int(0, 3)) {
            case 0: {  // flip
                const std::size_t pos =
                    static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
                mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
                break;
            }
            case 1: {  // delete a chunk
                const std::size_t start =
                    static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
                const std::size_t len = static_cast<std::size_t>(
                    rng.uniform_int(1, mutated.size() - start));
                mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                              mutated.begin() + static_cast<std::ptrdiff_t>(start + len));
                break;
            }
            case 2: {  // duplicate a chunk
                const std::size_t start =
                    static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
                const std::size_t len = static_cast<std::size_t>(
                    rng.uniform_int(1, std::min<std::size_t>(16, mutated.size() - start)));
                util::Bytes chunk(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                                  mutated.begin() +
                                      static_cast<std::ptrdiff_t>(start + len));
                mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                               chunk.begin(), chunk.end());
                break;
            }
            default: {  // splice the tail of a second valid encoding
                const std::size_t cut = static_cast<std::size_t>(
                    rng.uniform_int(0, std::min(mutated.size(), donor.size()) - 1));
                mutated.resize(cut);
                mutated.insert(mutated.end(),
                               donor.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(cut, donor.size())),
                               donor.end());
                break;
            }
        }
        const auto parsed = protocol::ChurnPlan::deserialize(mutated);
        if (parsed.has_value()) {
            const util::Bytes first = parsed->serialize();
            const auto reparsed = protocol::ChurnPlan::deserialize(first);
            ASSERT_TRUE(reparsed.has_value());
            EXPECT_EQ(reparsed->serialize(), first);
        }
    }
}

TEST(FuzzCodecs, ChurnPlanSpecRoundTripsAndSurvivesGarbage) {
    const protocol::ChurnPlan plan = rich_plan();
    const auto parsed = protocol::ChurnPlan::parse(plan.spec());
    ASSERT_TRUE(parsed.has_value()) << plan.spec();
    EXPECT_EQ(parsed->serialize(), plan.serialize());

    // Corrupted spec text must never crash the parser; accepted text must
    // round-trip through spec() again.
    const std::string spec = plan.spec();
    util::Xoshiro256 rng{777};
    for (int trial = 0; trial < 2000; ++trial) {
        std::string mutated = spec;
        const int op = static_cast<int>(rng.uniform_int(0, 2));
        const std::size_t pos =
            static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
        if (op == 0) {
            mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
        } else if (op == 1) {
            mutated.erase(pos, 1 + static_cast<std::size_t>(rng.uniform_int(0, 5)));
        } else {
            mutated.insert(pos, std::string(1, static_cast<char>(rng.uniform_int(32, 126))));
        }
        const auto reparsed = protocol::ChurnPlan::parse(mutated);
        if (reparsed.has_value()) {
            const auto again = protocol::ChurnPlan::parse(reparsed->spec());
            ASSERT_TRUE(again.has_value());
            EXPECT_EQ(again->serialize(), reparsed->serialize());
        }
    }
    // Pure garbage.
    for (int trial = 0; trial < 500; ++trial) {
        std::string junk(static_cast<std::size_t>(rng.uniform_int(0, 64)), '\0');
        for (auto& c : junk) c = static_cast<char>(rng.uniform_int(0, 255));
        (void)protocol::ChurnPlan::parse(junk);
    }
}

TEST(FuzzCodecs, PartialMeterSettlementNeverCrashes) {
    // Mid-run churn hands the settlement partial information: meters missing
    // for dead processors, counts missing for excluded ones, arbitrary
    // subsets thereof. The canonical settlement must stay total: full-size
    // vector, zeros for the excluded, no throw for any subset combination.
    util::Xoshiro256 rng{888};
    const std::vector<std::string> names = {"P1", "P2", "P3", "P4"};
    for (int trial = 0; trial < 2000; ++trial) {
        protocol::ChurnSettlementInputs inputs;
        inputs.kind = trial % 2 == 0 ? dlt::NetworkKind::kNcpFE
                                     : dlt::NetworkKind::kNcpNFE;
        inputs.z = rng.uniform(0.05, 0.5);
        inputs.block_count = 120;
        inputs.names = names;
        for (const auto& name : names) {
            if (rng.uniform() < 0.25) inputs.excluded.insert(name);
        }
        for (const auto& name : names) {
            if (inputs.excluded.contains(name)) continue;
            if (rng.uniform() < 0.9) inputs.bids[name] = rng.uniform(0.5, 3.0);
            if (rng.uniform() < 0.8) {
                inputs.final_counts[name] =
                    static_cast<std::size_t>(rng.uniform_int(0, 120));
            }
            if (rng.uniform() < 0.7) inputs.phis[name] = rng.uniform(0.0, 2.0);
        }
        const auto payments = protocol::churn_settlement_payments(inputs);
        ASSERT_EQ(payments.size(), names.size());
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (inputs.excluded.contains(names[i])) {
                EXPECT_EQ(payments[i], 0.0) << names[i];
            }
            EXPECT_TRUE(std::isfinite(payments[i])) << names[i];
        }
    }
}

TEST(FuzzCodecs, UnknownFrameFloodIsDroppedAndCounted) {
    // A junk-spamming processor broadcasts frames with a wire type outside
    // the MsgType enum. Every receiving endpoint (each peer and the referee)
    // must drop every frame through the one shared dispatcher policy and
    // count it — and the run's economics must be untouched.
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpFE;
    config.z = 0.25;
    config.true_w = {1.0, 2.0, 1.5, 0.8};
    config.block_count = 240;
    config.seed = 42;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    config.strategies.assign(config.true_w.size(), agents::truthful());
    constexpr std::size_t kFrames = 3;
    config.strategies[1] = agents::junk_spammer(kFrames);

    std::map<std::string, std::uint64_t> dropped;
    const auto outcome = protocol::run_protocol(
        config, [&](const protocol::RunInternals& internals) {
            auto& registry = internals.context.metrics_registry();
            for (const char* endpoint : {"P1", "P3", "P4", "referee"}) {
                dropped[endpoint] =
                    registry
                        .counter(protocol::kUnknownMessagesMetric,
                                 {{"endpoint", endpoint}, {"type", "9999"}})
                        .value();
            }
        });

    // Junk is noise, not an offense: the run settles exactly like an honest
    // one and nobody is fined.
    EXPECT_FALSE(outcome.terminated_early);
    EXPECT_EQ(outcome.fined_count(), 0u);
    // Every endpoint except the sender saw and dropped every frame.
    for (const auto& [endpoint, count] : dropped) {
        EXPECT_EQ(count, kFrames) << endpoint;
    }
}

// ---- flat wire codec (protocol/wire.hpp) ------------------------------------

namespace wire = protocol::wire;

// Accept-set equivalence under random bytes: the flat view parser accepts
// exactly what the legacy decoder accepts, and every accepted input is
// canonical — flat_encode of the legacy decode reproduces the input bytes
// (so the two codecs cannot drift on anything either of them accepts).
template <typename Body, typename View>
void fuzz_flat_equivalence(std::uint64_t seed, std::size_t iterations,
                           std::size_t max_len) {
    util::Xoshiro256 rng{seed};
    for (std::size_t i = 0; i < iterations; ++i) {
        const util::Bytes data = random_bytes(rng, max_len);
        const auto legacy = Body::deserialize(data);
        const auto view = View::parse(data);
        ASSERT_EQ(legacy.has_value(), view.has_value())
            << "accept sets diverge on a " << data.size() << "-byte input";
        if (legacy.has_value()) {
            EXPECT_EQ(wire::flat_encode(*legacy), data);
        }
    }
}

TEST(FuzzFlatCodec, BidEquivalence) {
    fuzz_flat_equivalence<protocol::BidBody, wire::BidView>(41, 3000, 128);
}
TEST(FuzzFlatCodec, LoadBatchEquivalence) {
    fuzz_flat_equivalence<protocol::LoadBatch, wire::LoadBatchView>(42, 2000, 512);
}
TEST(FuzzFlatCodec, DoubleBidEvidenceEquivalence) {
    fuzz_flat_equivalence<protocol::DoubleBidEvidence, wire::DoubleBidEvidenceView>(
        43, 2000, 512);
}
TEST(FuzzFlatCodec, AllocComplaintEquivalence) {
    fuzz_flat_equivalence<protocol::AllocComplaintBody, wire::AllocComplaintView>(
        44, 2000, 512);
}
TEST(FuzzFlatCodec, BidVectorEquivalence) {
    fuzz_flat_equivalence<protocol::BidVectorBody, wire::BidVectorView>(45, 2000, 512);
}
TEST(FuzzFlatCodec, MediateRequestEquivalence) {
    fuzz_flat_equivalence<protocol::MediateRequestBody, wire::MediateRequestView>(
        46, 3000, 256);
}
TEST(FuzzFlatCodec, MeterVectorEquivalence) {
    fuzz_flat_equivalence<protocol::MeterVectorBody, wire::MeterVectorView>(47, 3000,
                                                                            256);
}
TEST(FuzzFlatCodec, PaymentEquivalence) {
    fuzz_flat_equivalence<protocol::PaymentBody, wire::PaymentView>(48, 3000, 256);
}
TEST(FuzzFlatCodec, TerminateEquivalence) {
    fuzz_flat_equivalence<protocol::TerminateBody, wire::TerminateView>(49, 3000, 256);
}
TEST(FuzzFlatCodec, ExcludeEquivalence) {
    fuzz_flat_equivalence<protocol::ExcludeBody, wire::ExcludeView>(50, 3000, 256);
}
TEST(FuzzFlatCodec, ReallocEquivalence) {
    fuzz_flat_equivalence<protocol::ReallocBody, wire::ReallocView>(51, 3000, 256);
}
TEST(FuzzFlatCodec, SignedMessageEquivalence) {
    fuzz_flat_equivalence<crypto::SignedMessage, wire::SignedMessageView>(52, 3000,
                                                                          512);
}

// A zoo of representative bodies — honest values plus the deviant shapes
// the strategy zoo produces (empty vectors, mutated bids, termination
// verdicts, churn exclusions/reallocations) and codec edge cases (empty
// strings, zero counts, negative and subnormal doubles).
std::vector<util::Bytes> body_zoo() {
    std::vector<util::Bytes> zoo;
    const auto add = [&zoo](const auto& body, const util::Bytes& legacy) {
        const util::Bytes flat = wire::flat_encode(body);
        EXPECT_EQ(flat, legacy) << "flat_encode diverges from serialize()";
        zoo.push_back(flat);
    };

    crypto::Pki pki;
    auto signer =
        crypto::make_registered_signer(pki, "P1", 7, crypto::SignatureAlgorithm::kFast);
    protocol::DataSet data(3, 16);

    for (const protocol::BidBody& bid :
         {protocol::BidBody{1, "P1", 1.5}, protocol::BidBody{0, "", 0.0},
          protocol::BidBody{~0ull, "P10", -2.5e-308}}) {
        add(bid, bid.serialize());
    }
    protocol::LoadBatch batch;
    batch.origin = "P1";
    for (std::size_t i = 0; i < 4; ++i) batch.blocks.push_back(data.block(i));
    add(batch, batch.serialize());
    add(protocol::LoadBatch{}, protocol::LoadBatch{}.serialize());

    const auto first = crypto::sign_message(*signer, "P1",
                                            protocol::BidBody{1, "P1", 1.5}.serialize());
    const auto second = crypto::sign_message(
        *signer, "P1", protocol::BidBody{1, "P1", 2.5}.serialize());
    add(first, first.serialize());
    protocol::DoubleBidEvidence evidence{"P1", first, second};
    add(evidence, evidence.serialize());

    protocol::AllocComplaintBody complaint;
    complaint.kind = protocol::AllocComplaintKind::kOverShipped;
    complaint.complainant = "P2";
    complaint.expected_blocks = 5;
    complaint.received_blocks = 9;
    complaint.held_blocks = {data.block(5), data.block(6)};
    add(complaint, complaint.serialize());

    protocol::BidVectorBody vector;
    vector.submitter = "P1";
    vector.bids = {first, second};
    add(vector, vector.serialize());

    protocol::MediateRequestBody mediate{"P3", {0, 7, 15}};
    add(mediate, mediate.serialize());

    protocol::MeterVectorBody meters;
    meters.job_id = 9;
    meters.phis = {{"P1", 0.25}, {"P2", 1e-300}, {"", -0.0}};
    add(meters, meters.serialize());

    protocol::PaymentBody payment{3, "P2", {2.75, -1.25, 0.0}};
    add(payment, payment.serialize());
    add(protocol::PaymentBody{}, protocol::PaymentBody{}.serialize());

    protocol::TerminateBody verdict{"offense (iii)", {"P2", "P4"}};
    add(verdict, verdict.serialize());
    protocol::ExcludeBody exclude{7, {"P3"}};
    add(exclude, exclude.serialize());
    protocol::ReallocBody realloc_body;
    realloc_body.job_id = 7;
    realloc_body.dead = "P2";
    realloc_body.dead_final = 12;
    realloc_body.extras = {{"P1", 30}, {"P3", 18}};
    add(realloc_body, realloc_body.serialize());
    return zoo;
}

// One decoder pair over one input: accept/reject parity, and canonical
// re-encoding parity when accepted.
template <typename Body, typename View>
void fuzz_pair_accepts(std::span<const std::uint8_t> data) {
    const auto legacy = Body::deserialize(data);
    const auto view = View::parse(data);
    ASSERT_EQ(legacy.has_value(), view.has_value())
        << "accept sets diverge on a " << data.size() << "-byte input";
    if (legacy.has_value()) {
        EXPECT_EQ(wire::flat_encode(*legacy), util::Bytes(data.begin(), data.end()));
    }
}

// The full decoder matrix over one input — every body decoder sees every
// input, exactly like a hostile peer cross-sending message types.
void fuzz_decoder_matrix(std::span<const std::uint8_t> data) {
    fuzz_pair_accepts<protocol::BidBody, wire::BidView>(data);
    fuzz_pair_accepts<protocol::LoadBatch, wire::LoadBatchView>(data);
    fuzz_pair_accepts<protocol::DoubleBidEvidence, wire::DoubleBidEvidenceView>(data);
    fuzz_pair_accepts<protocol::AllocComplaintBody, wire::AllocComplaintView>(data);
    fuzz_pair_accepts<protocol::BidVectorBody, wire::BidVectorView>(data);
    fuzz_pair_accepts<protocol::MediateRequestBody, wire::MediateRequestView>(data);
    fuzz_pair_accepts<protocol::MeterVectorBody, wire::MeterVectorView>(data);
    fuzz_pair_accepts<protocol::PaymentBody, wire::PaymentView>(data);
    fuzz_pair_accepts<protocol::TerminateBody, wire::TerminateView>(data);
    fuzz_pair_accepts<protocol::ExcludeBody, wire::ExcludeView>(data);
    fuzz_pair_accepts<protocol::ReallocBody, wire::ReallocView>(data);
    fuzz_pair_accepts<crypto::SignedMessage, wire::SignedMessageView>(data);
}

TEST(FuzzFlatCodec, EncodersMatchLegacyAcrossBodyZoo) {
    // body_zoo() itself asserts flat_encode(x) == x.serialize() per body.
    EXPECT_GT(body_zoo().size(), 15u);
}

TEST(FuzzFlatCodec, TruncationAndOverLengthRejectedAcrossBodyZoo) {
    // Every strict prefix and every over-length extension of a valid
    // encoding runs through the whole decoder matrix: the pair must agree
    // on accept/reject at every cut (the wire format requires exact
    // exhaustion, so for the matching type both reject).
    for (const util::Bytes& wire_bytes : body_zoo()) {
        for (std::size_t cut = 0; cut < wire_bytes.size(); ++cut) {
            fuzz_decoder_matrix(std::span<const std::uint8_t>(wire_bytes.data(), cut));
        }
        util::Bytes padded = wire_bytes;
        for (std::uint8_t junk : {std::uint8_t{0}, std::uint8_t{0xff}}) {
            padded.push_back(junk);
            fuzz_decoder_matrix(padded);
        }
    }
}

TEST(FuzzFlatCodec, StructuredMutationsKeepAcceptSetsAligned) {
    // Flips, chunk deletions, duplications and cross-encoding splices over
    // the whole body zoo: after every mutation each decoder pair must agree,
    // per type, on accept/reject (crashes and divergence both fail here).
    const std::vector<util::Bytes> zoo = body_zoo();
    util::Xoshiro256 rng{4242};
    for (int trial = 0; trial < 4000; ++trial) {
        util::Bytes mutated = zoo[static_cast<std::size_t>(
            rng.uniform_int(0, zoo.size() - 1))];
        switch (rng.uniform_int(0, 3)) {
            case 0: {  // flip
                const std::size_t pos =
                    static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
                mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
                break;
            }
            case 1: {  // truncate
                mutated.resize(static_cast<std::size_t>(
                    rng.uniform_int(0, mutated.size() - 1)));
                break;
            }
            case 2: {  // over-length: append junk
                const std::size_t extra =
                    static_cast<std::size_t>(rng.uniform_int(1, 16));
                for (std::size_t k = 0; k < extra; ++k) {
                    mutated.push_back(
                        static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
                }
                break;
            }
            default: {  // transplant: splice the tail of another zoo member
                const util::Bytes& donor = zoo[static_cast<std::size_t>(
                    rng.uniform_int(0, zoo.size() - 1))];
                const std::size_t cut = static_cast<std::size_t>(rng.uniform_int(
                    0, std::min(mutated.size(), donor.size()) - 1));
                mutated.resize(cut);
                mutated.insert(mutated.end(),
                               donor.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(cut, donor.size())),
                               donor.end());
                break;
            }
        }
        fuzz_decoder_matrix(mutated);
    }
}

TEST(FuzzFlatCodec, SignedFieldTransplantsNeverVerify) {
    // flat_signed recombinations of two valid envelopes — every proper
    // hybrid of (signer, payload, signature) must parse but fail view
    // verification, exactly like the legacy transplant sweep above.
    crypto::Pki pki;
    auto signer1 =
        crypto::make_registered_signer(pki, "P1", 7, crypto::SignatureAlgorithm::kFast);
    auto signer2 =
        crypto::make_registered_signer(pki, "P2", 7, crypto::SignatureAlgorithm::kFast);
    const auto msg1 = crypto::sign_message(*signer1, "P1",
                                           protocol::BidBody{1, "P1", 1.5}.serialize());
    const auto msg2 = crypto::sign_message(*signer2, "P2",
                                           protocol::BidBody{1, "P2", 2.5}.serialize());
    EXPECT_EQ(wire::flat_signed(msg1.signer, msg1.payload, msg1.signature),
              msg1.serialize());
    for (int mask = 1; mask < 7; ++mask) {
        const crypto::SignedMessage& s = (mask & 1) ? msg2 : msg1;
        const crypto::SignedMessage& p = (mask & 2) ? msg2 : msg1;
        const crypto::SignedMessage& g = (mask & 4) ? msg2 : msg1;
        const util::Bytes hybrid = wire::flat_signed(s.signer, p.payload, g.signature);
        const auto view = wire::SignedMessageView::parse(hybrid);
        ASSERT_TRUE(view.has_value()) << "hybrid mask " << mask;
        EXPECT_FALSE(view->verify(pki)) << "hybrid mask " << mask << " verified";
        // The view round-trips to the same owned envelope the legacy
        // decoder produces, and that one is rejected too.
        const auto legacy = crypto::SignedMessage::deserialize(hybrid);
        ASSERT_TRUE(legacy.has_value());
        EXPECT_FALSE(legacy->verify(pki));
        EXPECT_EQ(view->to_owned().serialize(), hybrid);
    }
}

TEST(FuzzCodecs, BlockMutationsFailIntegrity) {
    protocol::DataSet data(3, 16);
    const protocol::Block block = data.block(7);
    const util::Bytes wire = block.serialize();
    util::Xoshiro256 rng{5};
    for (int trial = 0; trial < 500; ++trial) {
        util::Bytes mutated = wire;
        const std::size_t pos =
            static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
        mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
        const auto parsed = protocol::Block::deserialize(mutated);
        if (parsed.has_value()) {
            EXPECT_FALSE(protocol::DataSet::verify_block(data.root(), *parsed))
                << "mutation at " << pos;
        }
    }
}

}  // namespace
}  // namespace dlsbl
