// Adversarial-input robustness: every wire decoder must survive arbitrary
// bytes (returning nullopt, never crashing or throwing) — a processor can
// feed the referee or its peers anything at all.
#include <gtest/gtest.h>

#include "crypto/lamport.hpp"
#include "crypto/merkle.hpp"
#include "crypto/mss.hpp"
#include "crypto/pki.hpp"
#include "protocol/blocks.hpp"
#include "protocol/messages.hpp"
#include "util/rng.hpp"

namespace dlsbl {
namespace {

util::Bytes random_bytes(util::Xoshiro256& rng, std::size_t max_len) {
    util::Bytes out(static_cast<std::size_t>(rng.uniform_int(0, max_len)));
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    return out;
}

template <typename T>
void fuzz_decoder(std::uint64_t seed, std::size_t iterations, std::size_t max_len) {
    util::Xoshiro256 rng{seed};
    for (std::size_t i = 0; i < iterations; ++i) {
        const util::Bytes data = random_bytes(rng, max_len);
        // Must not throw; any parse success must at least round-trip without
        // crashing.
        const auto parsed = T::deserialize(data);
        if (parsed.has_value()) {
            (void)parsed->serialize();
        }
    }
}

TEST(FuzzCodecs, BidBody) { fuzz_decoder<protocol::BidBody>(1, 3000, 128); }
TEST(FuzzCodecs, LoadBatch) { fuzz_decoder<protocol::LoadBatch>(2, 2000, 512); }
TEST(FuzzCodecs, DoubleBidEvidence) {
    fuzz_decoder<protocol::DoubleBidEvidence>(3, 2000, 512);
}
TEST(FuzzCodecs, AllocComplaint) {
    fuzz_decoder<protocol::AllocComplaintBody>(4, 2000, 512);
}
TEST(FuzzCodecs, BidVector) { fuzz_decoder<protocol::BidVectorBody>(5, 2000, 512); }
TEST(FuzzCodecs, MediateRequest) {
    fuzz_decoder<protocol::MediateRequestBody>(6, 3000, 256);
}
TEST(FuzzCodecs, MeterVector) { fuzz_decoder<protocol::MeterVectorBody>(7, 3000, 256); }
TEST(FuzzCodecs, PaymentBody) { fuzz_decoder<protocol::PaymentBody>(8, 3000, 256); }
TEST(FuzzCodecs, TerminateBody) { fuzz_decoder<protocol::TerminateBody>(9, 3000, 256); }
TEST(FuzzCodecs, Block) { fuzz_decoder<protocol::Block>(10, 2000, 512); }
TEST(FuzzCodecs, SignedMessage) { fuzz_decoder<crypto::SignedMessage>(11, 3000, 512); }
TEST(FuzzCodecs, MerkleProof) { fuzz_decoder<crypto::MerkleProof>(12, 3000, 512); }
TEST(FuzzCodecs, MssSignature) { fuzz_decoder<crypto::MssSignature>(13, 500, 20000); }
TEST(FuzzCodecs, LamportSignature) {
    fuzz_decoder<crypto::LamportSignature>(14, 200, 20000);
}

// Mutation fuzzing: take a VALID encoding, flip random bytes, and require
// graceful handling — and, for signed content, rejection by verification.
TEST(FuzzCodecs, MutatedSignedMessagesNeverVerify) {
    crypto::Pki pki;
    auto signer =
        crypto::make_registered_signer(pki, "P1", 7, crypto::SignatureAlgorithm::kFast);
    protocol::BidBody bid{1, "P1", 1.5};
    const auto msg = crypto::sign_message(*signer, "P1", bid.serialize());
    const util::Bytes wire = msg.serialize();

    util::Xoshiro256 rng{99};
    int accepted_mutants = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        util::Bytes mutated = wire;
        const std::size_t flips = 1 + rng.uniform_int(0, 3);
        for (std::size_t f = 0; f < flips; ++f) {
            const std::size_t pos =
                static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
            mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
        }
        if (mutated == wire) continue;
        const auto parsed = crypto::SignedMessage::deserialize(mutated);
        if (parsed && parsed->verify(pki) && parsed->payload == msg.payload &&
            parsed->signer == msg.signer) {
            ++accepted_mutants;  // only possible if mutation hit redundant bytes
        }
    }
    EXPECT_EQ(accepted_mutants, 0);
}

TEST(FuzzCodecs, TruncatedValidEncodingsRejected) {
    protocol::MeterVectorBody body;
    body.job_id = 5;
    body.phis = {{"P1", 0.25}, {"P2", 0.5}, {"P3", 0.75}};
    const util::Bytes wire = body.serialize();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        const auto parsed = protocol::MeterVectorBody::deserialize(
            std::span<const std::uint8_t>(wire.data(), cut));
        EXPECT_FALSE(parsed.has_value()) << "cut at " << cut;
    }
}

TEST(FuzzCodecs, BlockMutationsFailIntegrity) {
    protocol::DataSet data(3, 16);
    const protocol::Block block = data.block(7);
    const util::Bytes wire = block.serialize();
    util::Xoshiro256 rng{5};
    for (int trial = 0; trial < 500; ++trial) {
        util::Bytes mutated = wire;
        const std::size_t pos =
            static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
        mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
        const auto parsed = protocol::Block::deserialize(mutated);
        if (parsed.has_value()) {
            EXPECT_FALSE(protocol::DataSet::verify_block(data.root(), *parsed))
                << "mutation at " << pos;
        }
    }
}

}  // namespace
}  // namespace dlsbl
