// Fixture: every determinism-rule trigger. Linted by test_lint.cpp under a
// fake src/ path; never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int entropy() {
    std::random_device device;           // determinism: random_device
    int x = rand();                      // determinism: rand
    srand(42);                           // determinism: srand
    const char* home = std::getenv("HOME");  // determinism: getenv
    auto t0 = std::chrono::steady_clock::now();   // determinism: ::now()
    auto wall = std::time(nullptr);      // determinism: std::time(...)
    long ticks = clock();                // determinism: clock() call
    (void)t0;
    (void)home;
    return x + static_cast<int>(device()) + static_cast<int>(wall) +
           static_cast<int>(ticks);
}
