// Fixture: crypto-alloc triggers (linted under a fake src/crypto/ path).
// Never compiled.
#include <cstdlib>

unsigned char* make_buffer(std::size_t n) {
    unsigned char* a = new unsigned char[n];        // crypto-alloc: new
    void* b = std::malloc(n);                       // crypto-alloc: malloc
    std::free(b);                                   // crypto-alloc: free
    delete[] a;                                     // crypto-alloc: delete
    return nullptr;
}

struct NoCopy {
    NoCopy(const NoCopy&) = delete;  // `= delete` is NOT an allocation
};
