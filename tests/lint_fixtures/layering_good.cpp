// Fixture: near-misses that rule A must NOT flag even under a protocol-core
// path. Never compiled.
//
// Comment mentions of sim::Simulator and "sim/kernel.hpp" are fine — the
// lexer strips comments before the rules run.
#include "protocol/endpoint.hpp"

namespace fixture {

// An identifier merely *named* sim is not the sim layer.
struct Transport {
    double bus_free_at() const { return 0.0; }
};

double probe(const Transport& sim) {
    return sim.bus_free_at();  // member access via '.', not 'sim::'
}

// Strings naming the layer are data, not references to it.
const char* const kLabel = "sim::Simulator";
const char* const kPath = "sim/kernel.hpp";

// A similar-looking include outside sim/ passes.
int simulate(int x) { return x + 1; }

}  // namespace fixture
