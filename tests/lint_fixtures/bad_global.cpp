// Fixture: mutable-global triggers (linted under a fake src/ path).
// Never compiled.
#include <atomic>
#include <string>

int g_counter = 0;                       // mutable-global: = init
static double g_scale{1.5};              // mutable-global: brace init
std::string g_name;                      // mutable-global: Type name;
std::atomic<bool> g_flag{false};         // mutable-global: brace init
thread_local int t_slot = -1;            // mutable-global: thread_local

namespace fixture {
inline int g_nested = 7;                 // mutable-global: nested namespace
}  // namespace fixture
