// Rule U fixture: direct iteration over unordered containers. Expected
// findings when linted as src/protocol/ or src/crypto/: 4
// (range-for over table_, range-for over seen, table_.begin(), ids->cbegin()).
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Ledger {
    std::unordered_map<std::string, int> table_;
    std::unordered_set<int>* ids = nullptr;

    int sum() const {
        int total = 0;
        for (const auto& [key, value] : table_) {  // finding: range-for
            total += value;
        }
        return total;
    }

    int first() const {
        auto it = table_.begin();  // finding: iterator walk
        return it == table_.end() ? 0 : it->second;
    }
};

int count_ids(const Ledger& ledger) {
    int n = 0;
    for (auto it = ledger.ids->cbegin(); it != ledger.ids->cend(); ++it) {
        ++n;  // cbegin on line above is the finding; .cend() alone is not
    }
    return n;
}

int count_seen() {
    std::unordered_set<int> seen;
    seen.insert(1);
    int n = 0;
    for (int v : seen) n += v;  // finding: range-for over local
    return n;
}
