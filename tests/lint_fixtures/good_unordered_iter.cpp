// Rule U fixture: permitted near-misses. Linted as src/protocol/ or
// src/crypto/ this file must raise zero unordered-iteration findings:
// ordered containers iterate freely, and unordered containers are fine for
// order-independent membership tests and point lookups.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Index {
    std::map<std::string, int> ordered_;
    std::unordered_map<std::string, int> cache_;
    std::vector<int> values_;

    int sum_ordered() const {
        int total = 0;
        for (const auto& [key, value] : ordered_) total += value;  // std::map: fine
        for (int v : values_) total += v;                          // vector: fine
        return total;
    }

    bool contains(const std::string& key) const {
        // Point lookup + end-sentinel comparison: order-independent.
        return cache_.find(key) != cache_.end();
    }

    int lookup(const std::string& key) const {
        const auto it = cache_.find(key);
        return it == cache_.cend() ? 0 : it->second;
    }

    void remember(const std::string& key, int value) {
        cache_[key] = value;
        cache_.emplace(key, value);
    }
};
