// Fixture for the protocol-codec rule: per-message legacy codec calls in
// the protocol core. Expected findings (when linted as src/protocol/*):
//   body.serialize(), msg->serialize(), BidBody::deserialize — 3 total.
// Near-misses that must NOT fire: a declaration, a raw identifier, and
// any of it outside src/protocol.
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

struct BidBody {
    std::vector<std::uint8_t> serialize() const;  // declaration: no finding
    static std::optional<BidBody> deserialize(std::span<const std::uint8_t> d);
};

std::vector<std::uint8_t> ship(const BidBody& body, const BidBody* msg) {
    auto a = body.serialize();
    auto b = msg->serialize();
    auto c = BidBody::deserialize(a);
    (void)c;
    int serialize = 0;  // bare identifier: no finding
    (void)serialize;
    return b;
}
