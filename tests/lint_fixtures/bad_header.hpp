// Fixture: hygiene triggers — no #pragma once, and `using namespace` at
// both global and nested-namespace scope. Never compiled.
#include <string>

using namespace std;  // using-namespace-header: global scope

namespace fixture {
using namespace std::literals;  // using-namespace-header: namespace scope

inline int add(int a, int b) { return a + b; }
}  // namespace fixture
