// Fixture: float-equality triggers. Never compiled.
bool checks(double x, double y) {
    bool a = (x == 1.5);     // float-equality: literal rhs
    bool b = (0.0 != y);     // float-equality: literal lhs
    bool c = (x == -2.5e3);  // float-equality: signed literal rhs
    bool d = (y != 1e-9);    // float-equality: exponent literal
    return a || b || c || d;
}
