// Fixture: near-misses that must NOT trigger any rule even under a src/
// path. Never compiled.
//
// Comment mentions of rand(), time(nullptr) and steady_clock::now() are
// fine — the lexer strips comments before the rules run.
#include <mutex>
#include <string>

namespace fixture {

constexpr int kAnswer = 42;              // constexpr global: fine
const char* const kName = "rand(";       // banned name inside a string: fine
inline constexpr double kScale = 1.5;    // constexpr: fine

struct Simulator {
    double now_ = 0.0;
    [[nodiscard]] double now() const { return now_; }   // member decl: fine
};

struct Event {
    Event& time(double t);               // member named `time`: fine
};

double sample(const Simulator& sim) {
    return sim.now();                    // member call via '.': fine
}

bool integer_compare(int x) { return x == 1; }        // int ==: fine
bool float_order(double x) { return x < 1.5; }        // float <: fine

int guarded(std::mutex& m) {
    const std::lock_guard<std::mutex> guard(m);       // RAII lock: fine
    return kAnswer;
}

std::string brand(const std::string& s) {
    return s + "time(";                  // banned name in string: fine
}

}  // namespace fixture
