// Fixture: inline DLSBL_LINT_ALLOW suppression forms. Every violation in
// this file carries a marker, so it must lint clean. Never compiled.
#include <cstdlib>

int knob() {
    // trailing-comment form, same line:
    const char* env = std::getenv("KNOB");  // DLSBL_LINT_ALLOW(determinism)

    // standalone-comment form, applies to the next line:
    // DLSBL_LINT_ALLOW(determinism)
    const char* env2 = std::getenv("KNOB2");

    // multi-rule marker:
    // DLSBL_LINT_ALLOW(determinism,float-equality)
    bool odd = (std::atof(std::getenv("X")) == 1.5);

    return (env != nullptr) + (env2 != nullptr) + odd;
}
