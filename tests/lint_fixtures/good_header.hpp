// Fixture: a compliant header — #pragma once after the comment preamble,
// `using namespace` only inside a function body. Never compiled.
#pragma once

#include <string>

namespace fixture {

inline std::string literal_demo() {
    using namespace std::string_literals;  // function scope: fine
    return "ok"s;
}

}  // namespace fixture
