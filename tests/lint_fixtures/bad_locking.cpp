// Fixture: manual-lock triggers. Never compiled.
#include <mutex>

std::mutex g_demo_mutex;  // (also a mutable global when linted under src/)

void critical() {
    g_demo_mutex.lock();     // manual-lock: lock()
    g_demo_mutex.unlock();   // manual-lock: unlock()
}

void maybe(std::mutex* m) {
    if (m->try_lock()) {     // manual-lock: try_lock()
        m->unlock();         // manual-lock: unlock()
    }
}
