// Fixture: layering breaches that rule A must flag when the file is linted
// under a protocol-core path (src/protocol/*.cpp). Never compiled.
#include "sim/kernel.hpp"
#include "sim/network.hpp"

namespace fixture {

double peek(const sim::Simulator& simulator) {
    return simulator.now();
}

void hook(sim::Network& network) {
    (void)network;
}

}  // namespace fixture
