// Bandwidth-charged control messages + trace-derived Gantt timelines.
#include <gtest/gtest.h>

#include "protocol/detail/run_internals.hpp"
#include "protocol/runner.hpp"
#include "dlt/finish_time.hpp"
#include "sim/network.hpp"

namespace dlsbl::sim {
namespace {

class Sink final : public Process {
 public:
    explicit Sink(std::string name) : Process(std::move(name)) {}
    void on_message(const Envelope& envelope) override { inbox.push_back(envelope); }
    std::vector<Envelope> inbox;
};

TEST(Bandwidth, ControlMessagesOccupyBus) {
    Simulator sim;
    Network net(sim, 0.5, 0.0, /*control_seconds_per_byte=*/0.01);
    Sink a{"A"}, b{"B"};
    net.attach(a);
    net.attach(b);
    net.send("A", "B", 1, util::Bytes(100, 0xaa));  // 1 second of bus time
    sim.run();
    EXPECT_DOUBLE_EQ(sim.now(), 1.0);
    ASSERT_EQ(b.inbox.size(), 1u);
}

TEST(Bandwidth, ControlAndLoadShareTheBus) {
    Simulator sim;
    Network net(sim, 0.5, 0.0, 0.01);
    Sink a{"A"}, b{"B"};
    net.attach(a);
    net.attach(b);
    net.send("A", "B", 1, util::Bytes(100, 0xaa));       // holds bus 1.0 s
    net.transfer_load("A", "B", 0.4, 2, {});             // then 0.2 s
    sim.run();
    EXPECT_DOUBLE_EQ(net.bus_free_at(), 1.0 + 0.4 * 0.5);
    EXPECT_EQ(b.inbox.size(), 2u);
}

TEST(Bandwidth, BroadcastChargedOnce) {
    Simulator sim;
    Network net(sim, 0.5, 0.0, 0.01);
    Sink a{"A"}, b{"B"}, c{"C"};
    net.attach(a);
    net.attach(b);
    net.attach(c);
    net.broadcast("A", 1, util::Bytes(50, 0xbb));  // 0.5 s, one transmission
    sim.run();
    EXPECT_DOUBLE_EQ(sim.now(), 0.5);
    EXPECT_EQ(b.inbox.size(), 1u);
    EXPECT_EQ(c.inbox.size(), 1u);
}

TEST(Bandwidth, ZeroCostPreservesOldBehaviour) {
    Simulator sim;
    Network net(sim, 0.5);
    Sink a{"A"}, b{"B"};
    net.attach(a);
    net.attach(b);
    net.send("A", "B", 1, util::Bytes(1000, 0xcc));
    sim.run();
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);  // instantaneous control plane
}

TEST(Bandwidth, NegativeRateRejected) {
    Simulator sim;
    EXPECT_THROW(Network(sim, 0.5, 0.0, -1e-6), std::invalid_argument);
}

TEST(TraceGantt, RebuildsTransfersAndCompute) {
    TraceRecorder trace;
    trace.record(0.0, TraceKind::kLoadTransferStart, "P1", "to=P2");
    trace.record(0.5, TraceKind::kLoadTransferEnd, "P1", "to=P2");
    trace.record(0.5, TraceKind::kComputeStart, "P2", "");
    trace.record(1.5, TraceKind::kComputeEnd, "P2", "");
    const auto bars = gantt_from_trace(trace);
    ASSERT_EQ(bars.size(), 2u);
    EXPECT_EQ(bars[0].lane, "BUS");
    EXPECT_DOUBLE_EQ(bars[0].start, 0.0);
    EXPECT_DOUBLE_EQ(bars[0].end, 0.5);
    EXPECT_EQ(bars[0].glyph, '-');
    EXPECT_EQ(bars[1].lane, "P2");
    EXPECT_DOUBLE_EQ(bars[1].end, 1.5);
    EXPECT_EQ(bars[1].glyph, '#');
}

TEST(TraceGantt, UnmatchedEventsIgnored) {
    TraceRecorder trace;
    trace.record(0.0, TraceKind::kComputeEnd, "P1", "");  // end without start
    trace.record(1.0, TraceKind::kLoadTransferEnd, "P1", "");
    EXPECT_TRUE(gantt_from_trace(trace).empty());
}

TEST(TraceGantt, ProtocolRunProducesRenderableTimeline) {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpFE;
    config.z = 0.25;
    config.true_w = {1.0, 2.0, 1.5};
    config.block_count = 900;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;

    std::vector<util::GanttBar> bars;
    protocol::run_protocol(config, [&](const protocol::RunInternals& internals) {
        bars = gantt_from_trace(internals.trace());
    });
    // m-1 transfers on the BUS lane + m compute bars.
    std::size_t bus = 0, compute = 0;
    double last_compute_end = 0.0;
    for (const auto& bar : bars) {
        if (bar.lane == "BUS") {
            ++bus;
        } else {
            ++compute;
            last_compute_end = std::max(last_compute_end, bar.end);
        }
        EXPECT_LE(bar.start, bar.end);
    }
    EXPECT_EQ(bus, 2u);
    EXPECT_EQ(compute, 3u);
    // The timeline's last compute end is the simulated makespan.
    dlt::ProblemInstance instance{config.kind, config.z, config.true_w};
    EXPECT_NEAR(last_compute_end, dlt::optimal_makespan(instance),
                0.01 * dlt::optimal_makespan(instance));
    // And it renders.
    const std::string figure = util::render_gantt(bars, {});
    EXPECT_NE(figure.find("BUS"), std::string::npos);
    EXPECT_NE(figure.find("P1"), std::string::npos);
}

TEST(Bandwidth, ProtocolHonestRunStillSettlesWithCharges) {
    protocol::ProtocolConfig config;
    config.kind = dlt::NetworkKind::kNcpNFE;
    config.z = 0.25;
    config.true_w = {1.0, 2.0, 1.5};
    config.block_count = 900;
    config.signature_algorithm = crypto::SignatureAlgorithm::kFast;
    config.control_seconds_per_byte = 1e-5;
    const auto outcome = protocol::run_protocol(config);
    EXPECT_FALSE(outcome.terminated_early) << outcome.termination_reason;
    EXPECT_EQ(outcome.fined_count(), 0u);
    // The charged control plane can only delay completion.
    dlt::ProblemInstance instance{config.kind, config.z, config.true_w};
    EXPECT_GE(outcome.makespan, dlt::optimal_makespan(instance) - 1e-9);
}

}  // namespace
}  // namespace dlsbl::sim
